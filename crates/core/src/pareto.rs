//! Multi-objective exploration: sweep the design constraint and keep the
//! Pareto frontier.
//!
//! The paper's conclusion points at "optimization over multiple
//! objectives" as the natural extension: a designer rarely wants one
//! network, but the *trade-off curve* between switch cost, wiring and the
//! port budget the floorplan can afford. [`degree_sweep`] synthesizes the
//! same pattern under a range of degree constraints and returns the
//! non-dominated results.

use crate::{synthesize, AppPattern, SynthError, SynthesisConfig, SynthesisResult};

/// One point of a constraint sweep.
#[derive(Debug)]
pub struct ParetoPoint {
    /// The degree constraint this point was synthesized under.
    pub max_degree: usize,
    /// Switches in the result.
    pub n_switches: usize,
    /// Switch-to-switch links in the result.
    pub n_links: usize,
    /// Whether the constraint was actually met.
    pub feasible: bool,
    /// The full synthesis result.
    pub result: SynthesisResult,
}

impl ParetoPoint {
    /// Whether this point dominates `other`: feasible, no worse in every
    /// objective (degree budget, switches, links) and better in at least
    /// one.
    pub fn dominates(&self, other: &ParetoPoint) -> bool {
        if !self.feasible || !other.feasible {
            return self.feasible && !other.feasible;
        }
        let no_worse = self.max_degree <= other.max_degree
            && self.n_switches <= other.n_switches
            && self.n_links <= other.n_links;
        let better = self.max_degree < other.max_degree
            || self.n_switches < other.n_switches
            || self.n_links < other.n_links;
        no_worse && better
    }
}

/// Synthesizes `pattern` once per degree bound in `degrees` and returns
/// the Pareto-optimal points (sorted by degree bound).
///
/// Infeasible bounds are kept only if no feasible point exists at all (so
/// the caller always gets something to inspect).
///
/// # Errors
///
/// Propagates the first [`SynthError`] (which, given a non-empty pattern,
/// does not occur).
pub fn degree_sweep(
    pattern: &AppPattern,
    degrees: impl IntoIterator<Item = usize>,
    config: &SynthesisConfig,
) -> Result<Vec<ParetoPoint>, SynthError> {
    let mut points = Vec::new();
    for degree in degrees {
        let result = synthesize(pattern, &config.clone().with_max_degree(degree))?;
        points.push(ParetoPoint {
            max_degree: degree,
            n_switches: result.report.n_switches,
            n_links: result.report.n_links,
            feasible: result.report.constraints_met,
            result,
        });
    }
    Ok(pareto_filter(points))
}

/// Keeps the non-dominated feasible points of a sweep, sorted by degree
/// bound. If nothing is feasible every point survives, so the caller
/// always gets something to inspect. Shared by [`degree_sweep`] and the
/// engine-driven `--pareto` sweep in the CLI/serve layer.
pub fn pareto_filter(mut points: Vec<ParetoPoint>) -> Vec<ParetoPoint> {
    if points.iter().any(|p| p.feasible) {
        let dominated: Vec<bool> = points
            .iter()
            .map(|p| points.iter().any(|q| !std::ptr::eq(p, q) && q.dominates(p)))
            .collect();
        let mut keep = Vec::new();
        for (point, dominated) in points.into_iter().zip(dominated) {
            if point.feasible && !dominated {
                keep.push(point);
            }
        }
        points = keep;
    }
    points.sort_by_key(|p| p.max_degree);
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocsyn_model::{Phase, PhaseSchedule};

    fn pattern8() -> AppPattern {
        let mut s = PhaseSchedule::new(8);
        s.push(Phase::from_flows([(0usize, 1usize), (2, 3), (4, 5), (6, 7)]).unwrap())
            .unwrap();
        s.push(Phase::from_flows([(0usize, 4usize), (1, 5), (2, 6), (3, 7)]).unwrap())
            .unwrap();
        AppPattern::from_schedule(&s)
    }

    #[test]
    fn sweep_returns_nondominated_feasible_points() {
        let config = SynthesisConfig::new().with_seed(5).with_restarts(2);
        let points = degree_sweep(&pattern8(), [3, 5, 9], &config).unwrap();
        assert!(!points.is_empty());
        assert!(points.iter().all(|p| p.feasible));
        for a in &points {
            for b in &points {
                if !std::ptr::eq(a, b) {
                    assert!(!a.dominates(b), "dominated point survived");
                }
            }
        }
        // Degree 9 admits the megaswitch (1 switch, 0 links) which
        // dominates on switches/links; lower degrees survive only if they
        // are not dominated on every axis — and degree 3's point has a
        // smaller degree budget, so both may legitimately coexist.
        assert!(points.iter().map(|p| p.max_degree).is_sorted());
    }

    #[test]
    fn dominance_relation() {
        let config = SynthesisConfig::new().with_seed(1).with_restarts(1);
        let r = synthesize(&pattern8(), &config).unwrap();
        let make = |d, s, l, f| ParetoPoint {
            max_degree: d,
            n_switches: s,
            n_links: l,
            feasible: f,
            result: r.clone(),
        };
        assert!(make(4, 2, 1, true).dominates(&make(5, 2, 1, true)));
        assert!(make(4, 2, 1, true).dominates(&make(4, 3, 2, true)));
        assert!(!make(4, 2, 1, true).dominates(&make(4, 2, 1, true)));
        assert!(!make(5, 2, 1, true).dominates(&make(4, 3, 2, true)));
        assert!(make(9, 9, 9, true).dominates(&make(3, 1, 0, false)));
        assert!(!make(3, 1, 0, false).dominates(&make(9, 9, 9, true)));
    }

    #[test]
    fn infeasible_everywhere_returns_all_points() {
        // Degree 0 is never satisfiable; all attempts are reported.
        let config = SynthesisConfig::new()
            .with_seed(2)
            .with_restarts(1)
            .with_max_rounds(20);
        let points = degree_sweep(&pattern8(), [0], &config).unwrap();
        assert_eq!(points.len(), 1);
        assert!(!points[0].feasible);
    }
}
