//! The `Best_Route` procedure (paper Appendix): indirect route assignment.
//!
//! When a switch `S_i` is split into `S_i` and `S_j`, a communication that
//! crosses a pipe `P_{i,k}` may instead detour through the sibling —
//! `P_{i,j}` then `P_{j,k}` — if that reduces the total links required
//! (the paper's Figure 5(e) shows communications (4,13)/(13,4) being
//! redirected this way). This module tries such detours for every pipe of
//! both split siblings and commits the ones that strictly reduce the link
//! estimate.

use nocsyn_model::Flow;

use crate::{Partitioning, PipeKey};

/// Runs `Best_Route(S_i, S_j)` on the current partitioning: for each pipe
/// connecting `si` (and, symmetrically, `sj`) to some other switch `k`,
/// tries to reroute each crossing communication via the sibling, and also
/// tries to straighten previously-detoured routes back to direct. Moves
/// are committed greedily when they strictly reduce the total link
/// estimate.
pub(crate) fn best_route(p: &mut Partitioning, si: usize, sj: usize) {
    for (switch, sibling) in [(si, sj), (sj, si)] {
        // Step 1-2: pipes connecting `switch` to others (excluding the
        // sibling pipe itself, which a detour cannot bypass).
        let pipe_keys: Vec<PipeKey> = p
            .pipes()
            .map(|(k, _)| k)
            .filter(|k| k.touches(switch) && !k.touches(sibling))
            .collect();
        for key in pipe_keys {
            let k_other = if key.lo() == switch {
                key.hi()
            } else {
                key.lo()
            };
            // Step 3: communications crossing this pipe (both directions;
            // bitset iteration yields ids in flow order, matching the old
            // sorted-set order).
            let crossing: Vec<Flow> = match p.pipe_flows(key) {
                Some((fwd, bwd)) => fwd
                    .iter()
                    .chain(bwd.iter())
                    .map(|id| p.interner().flow(id))
                    .collect(),
                None => continue,
            };
            for flow in crossing {
                try_detour(p, flow, switch, k_other, sibling);
            }
        }
    }

    // Straightening pass: a detour that stopped paying for itself (because
    // later moves shifted traffic) is reverted to the direct path.
    let detoured: Vec<usize> = (0..p.pattern().flows().len())
        .filter(|&i| p.path_of_idx(i).len() > 2)
        .collect();
    for idx in detoured {
        let direct = p.direct_path(idx);
        let before = p.total_links();
        p.stats.reroutes_tried += 1;
        let after = p.probe_total_links(idx, &direct);
        if after < before {
            p.set_path(idx, direct);
            p.stats.reroutes_accepted += 1;
        } else if after == before {
            p.stats.reroutes_neutral += 1;
        }
    }
}

/// Route repair for constraint violations that splitting cannot fix: a
/// single-processor switch whose distinct partners exceed its port budget
/// can consolidate several of its flows onto one shared first hop, because
/// serialized (different-period) flows share a link for free. For every
/// flow touching a violating switch, every detour through a third switch —
/// and the direct path — is scored by [`Partitioning::score`] (degree
/// excess first, then chip area) and the best strict improvement is
/// committed, until a fixpoint.
pub(crate) fn repair(p: &mut Partitioning, config: &crate::SynthesisConfig) {
    greedy_repair(p, config);
    // Greedy rerouting stalls on plateaus (e.g. a uniform over-degree
    // grid where every single reroute is score-neutral). Anneal over
    // random reroutes to cross, then descend again; retry with fresh
    // annealing seeds while violations remain.
    for round in 0..3 {
        if p.violating(config).is_empty() {
            break;
        }
        anneal_routes(p, config, round);
        greedy_repair(p, config);
    }
}

/// Strictly-improving reroute descent around violating switches.
fn greedy_repair(p: &mut Partitioning, config: &crate::SynthesisConfig) {
    for _ in 0..6 {
        let mut improved = false;
        for v in p.violating(config) {
            // Flows crossing any pipe of v.
            let keys: Vec<PipeKey> = p.pipes().map(|(k, _)| k).filter(|k| k.touches(v)).collect();
            let crossing: Vec<Flow> = keys
                .iter()
                .filter_map(|&k| p.pipe_flows(k))
                .flat_map(|(f, b)| f.iter().chain(b.iter()))
                .map(|id| p.interner().flow(id))
                .collect();
            for flow in crossing {
                if reroute_best(p, flow, config) {
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
}

/// Metropolis annealing over single-flow reroutes, minimizing degree
/// excess first and chip area second. Restores the best configuration
/// visited.
fn anneal_routes(p: &mut Partitioning, config: &crate::SynthesisConfig, round: u64) {
    use nocsyn_rng::Rng;

    let scalar = |p: &Partitioning| {
        let (excess, area) = p.score(config);
        excess as f64 * 1000.0 + area as f64
    };
    let n_flows = p.pattern().flows().len();
    if n_flows == 0 || p.n_switches() < 3 {
        return;
    }
    let mut rng = Rng::seed_from_u64(config.seed() ^ 0xA11E_A1ED ^ (round << 17));
    let snapshot = |p: &Partitioning| -> Vec<Vec<usize>> {
        (0..n_flows).map(|i| p.path_of_idx(i).to_vec()).collect()
    };

    let mut current = scalar(p);
    let mut best = current;
    let mut best_paths = snapshot(p);
    let mut temperature = 50.0;
    let iterations = 400 * n_flows.min(64);

    for _ in 0..iterations {
        let idx = rng.gen_range(0..n_flows);
        // Build the candidate on the stack; the common case (probe and
        // reject or skip) allocates nothing.
        let (hs, hd) = p.direct_endpoints(idx);
        let mut buf = [0usize; 3];
        let candidate: &[usize] = if hs != hd && rng.gen_bool(0.7) {
            let via = rng.gen_range(0..p.n_switches());
            if via == hs || via == hd {
                buf[0] = hs;
                buf[1] = hd;
                &buf[..2]
            } else {
                buf = [hs, via, hd];
                &buf[..3]
            }
        } else if hs == hd {
            buf[0] = hs;
            &buf[..1]
        } else {
            buf[0] = hs;
            buf[1] = hd;
            &buf[..2]
        };
        if candidate == p.path_of_idx(idx) {
            continue;
        }
        p.stats.reroutes_tried += 1;
        let (excess, area) = p.probe_score(idx, candidate, config);
        let new = excess as f64 * 1000.0 + area as f64;
        if new == current {
            p.stats.reroutes_neutral += 1;
        }
        let accept = new <= current || rng.gen_f64() < ((current - new) / temperature).exp();
        if accept {
            p.set_path(idx, candidate.to_vec());
            current = new;
            if new < best {
                best = new;
                best_paths = snapshot(p);
            }
            p.stats.reroutes_accepted += 1;
        }
        temperature = (temperature * 0.999).max(0.05);
    }

    // Restore the best visited configuration.
    if scalar(p) > best {
        for (i, path) in best_paths.into_iter().enumerate() {
            p.set_path(i, path);
        }
    }
}

/// Considers all simple reroutes of `flow` — the direct path and every
/// single-via detour — and commits the best one if it strictly improves
/// the lexicographic score. Returns whether a change was committed.
fn reroute_best(p: &mut Partitioning, flow: Flow, config: &crate::SynthesisConfig) -> bool {
    let idx = p.flow_idx(flow);
    let original = p.path_of_idx(idx).to_vec();
    let current_score = p.score(config);
    let direct = p.direct_path(idx);
    let mut candidates: Vec<Vec<usize>> = vec![direct.clone()];
    if direct.len() == 2 {
        // Only detour through switches already piped to an endpoint:
        // consolidation onto an existing pipe is the only reroute that can
        // lower an endpoint's degree, and it keeps the candidate set small.
        let neighbors: Vec<usize> = p
            .pipes()
            .map(|(k, _)| k)
            .filter(|k| k.touches(direct[0]) || k.touches(direct[1]))
            .flat_map(|k| [k.lo(), k.hi()])
            .collect();
        let mut vias: Vec<usize> = neighbors
            .into_iter()
            .filter(|&v| v != direct[0] && v != direct[1])
            .collect();
        vias.sort_unstable();
        vias.dedup();
        for via in vias {
            candidates.push(vec![direct[0], via, direct[1]]);
        }
    }
    let mut best: Option<(Vec<usize>, (usize, usize))> = None;
    for cand in candidates {
        if cand == original {
            continue;
        }
        p.stats.reroutes_tried += 1;
        let score = p.probe_score(idx, &cand, config);
        if score == current_score {
            p.stats.reroutes_neutral += 1;
        }
        if score < current_score && best.as_ref().is_none_or(|(_, s)| score < *s) {
            best = Some((cand, score));
        }
    }
    if let Some((path, _)) = best {
        p.set_path(idx, path);
        p.stats.reroutes_accepted += 1;
        true
    } else {
        false
    }
}

/// Tries to replace the `a -> b` hop of `flow`'s path with `a -> via -> b`;
/// commits iff the total link estimate strictly decreases.
fn try_detour(p: &mut Partitioning, flow: Flow, a: usize, b: usize, via: usize) {
    let idx = p.flow_idx(flow);
    let old = p.path_of_idx(idx).to_vec();
    if old.contains(&via) {
        return; // detour would revisit a switch; keep paths simple
    }
    let Some(pos) = position_of_hop(&old, a, b) else {
        return;
    };
    let mut new = old.clone();
    new.insert(pos + 1, via);

    p.stats.reroutes_tried += 1;
    let before = p.total_links();
    let after = p.probe_total_links(idx, &new);
    if after < before {
        p.set_path(idx, new);
        p.stats.reroutes_accepted += 1;
    } else if after == before {
        p.stats.reroutes_neutral += 1;
    }
}

/// The index `i` such that the path crosses between `a` and `b` at hop
/// `(path[i], path[i+1])`, in either orientation.
fn position_of_hop(path: &[usize], a: usize, b: usize) -> Option<usize> {
    path.windows(2)
        .position(|w| (w[0] == a && w[1] == b) || (w[0] == b && w[1] == a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AppPattern, SynthesisConfig};
    use nocsyn_model::{Clique, CliqueSet, ContentionSet};
    use nocsyn_rng::Rng;

    #[test]
    fn hop_position_is_orientation_insensitive() {
        assert_eq!(position_of_hop(&[0, 2, 5], 2, 5), Some(1));
        assert_eq!(position_of_hop(&[0, 2, 5], 5, 2), Some(1));
        assert_eq!(position_of_hop(&[0, 2, 5], 0, 5), None);
    }

    /// A pattern engineered so a detour pays off: three flows from procs on
    /// switch A to procs on switch B are mutually conflicting, but one of
    /// them can share the (otherwise idle) path through a third switch.
    #[test]
    fn detour_reduces_links_when_direct_pipe_is_congested() {
        // 6 procs. Flows 0->3, 1->4, 2->5 all in one contention period.
        let flows = [(0usize, 3usize), (1, 4), (2, 5)];
        let cliques = CliqueSet::from_cliques([Clique::from(flows)]);
        let mut contention = ContentionSet::new();
        for i in 0..flows.len() {
            for j in i + 1..flows.len() {
                contention.insert(flows[i].into(), flows[j].into());
            }
        }
        let pattern =
            AppPattern::from_parts(6, flows.iter().map(|&f| f.into()), contention, cliques);
        let mut p = crate::Partitioning::megaswitch(&pattern).unwrap();
        let mut rng = Rng::seed_from_u64(0);
        // Manufacture 3 switches: {0,1,2} on s0, {3,4,5} on s1, nothing on s2.
        p.split(0, &mut rng);
        p.split(0, &mut rng);
        // Deterministic layout regardless of rng: place explicitly.
        use nocsyn_model::ProcId;
        for proc in 0..3 {
            p.move_proc(ProcId(proc), 0);
        }
        for proc in 3..6 {
            p.move_proc(ProcId(proc), 1);
        }
        p.assert_consistent();
        // All three flows cross pipe (0,1) concurrently: 3 links.
        assert_eq!(p.total_links(), 3);

        // Detouring one flow via s2 yields pipes (0,1)=2, (0,2)=1, (2,1)=1
        // -> total 4: worse. Best_Route must therefore NOT commit it.
        best_route(&mut p, 0, 1);
        assert_eq!(p.total_links(), 3);
        p.assert_consistent();
    }

    /// The paper's Figure 5(e) situation: the direct pipe would need a 2nd
    /// link while the sibling path has spare capacity, so redirecting one
    /// communication saves a link.
    #[test]
    fn detour_commits_when_it_saves_a_link() {
        // Periods: {0->3, 1->4} concurrent; {2->5} alone; {0->3, 2->5}? No -
        // we want: pipe (0,1) carries two concurrent flows (needs 2), and a
        // via-switch path that already carries one of the SAME period's
        // flows... Construct:
        //   s0 hosts procs 0,1; s1 hosts 3,4; s2 hosts 2,5.
        //   Flows: a=0->3, b=1->4 (concurrent), c=2->5 (own period, stays
        //   inside s2).
        // Direct: pipe(0,1) = {a,b} concurrent -> 2 links. Detour b via s2:
        // pipe(0,1)={a}:1, pipe(0,2)={b}:1, pipe(1,2)... wait b=1->4 goes
        // s0->s2->s1: pipe(0,2)=1, pipe(2,1)=1 -> total 3 > 2. A detour
        // only pays when the via pipes ALREADY carry non-conflicting
        // traffic. Add flows d=0->5 (s0->s2) and e=2->4 (s2->s1) in a
        // DIFFERENT period from a,b, so they share links with b's detour.
        let flows = [(0usize, 3usize), (1, 4), (0, 5), (2, 4)];
        let cliques = CliqueSet::from_cliques([
            Clique::from([(0, 3), (1, 4)]),
            Clique::from([(0, 5), (2, 4)]),
        ]);
        let mut contention = ContentionSet::new();
        contention.insert((0, 3).into(), (1, 4).into());
        contention.insert((0, 5).into(), (2, 4).into());
        let pattern =
            AppPattern::from_parts(6, flows.iter().map(|&f| f.into()), contention, cliques);
        let mut p = crate::Partitioning::megaswitch(&pattern).unwrap();
        let mut rng = Rng::seed_from_u64(0);
        p.split(0, &mut rng);
        p.split(0, &mut rng);
        use nocsyn_model::ProcId;
        for (proc, home) in [(0, 0), (1, 0), (3, 1), (4, 1), (2, 2), (5, 2)] {
            p.move_proc(ProcId(proc), home);
        }
        p.assert_consistent();
        // Direct routing: pipe(0,1)={a,b} -> 2, pipe(0,2)={d} -> 1,
        // pipe(1,2)={e bwd} -> 1. Total 4.
        assert_eq!(p.total_links(), 4);

        best_route(&mut p, 0, 2);
        // Detouring either of a (0->3) or b (1->4) via s2 rides the
        // existing pipes: pipe(0,1) drops to 1; pipes (0,2) and (1,2) stay
        // at 1 because the detoured flow conflicts with neither d nor e.
        // Total 3.
        assert_eq!(p.total_links(), 3);
        let a_path = p.path(Flow::from_indices(0, 3)).unwrap().to_vec();
        let b_path = p.path(Flow::from_indices(1, 4)).unwrap().to_vec();
        let detoured = [&a_path, &b_path].iter().filter(|p| p.len() == 3).count();
        assert_eq!(
            detoured, 1,
            "exactly one flow detours: {a_path:?} {b_path:?}"
        );
        p.assert_consistent();
    }

    #[test]
    fn straightening_reverts_stale_detours() {
        // Install a detour manually, then remove the traffic that paid for
        // it and confirm best_route straightens the path.
        let flows = [(0usize, 3usize)];
        let cliques = CliqueSet::from_cliques([Clique::from(flows)]);
        let pattern = AppPattern::from_parts(
            4,
            flows.iter().map(|&f| f.into()),
            ContentionSet::new(),
            cliques,
        );
        let mut p = crate::Partitioning::megaswitch(&pattern).unwrap();
        let mut rng = Rng::seed_from_u64(3);
        p.split(0, &mut rng);
        p.split(0, &mut rng);
        use nocsyn_model::ProcId;
        for (proc, home) in [(0, 0), (1, 2), (2, 2), (3, 1)] {
            p.move_proc(ProcId(proc), home);
        }
        let idx = p.flow_idx(Flow::from_indices(0, 3));
        p.set_path(idx, vec![0, 2, 1]);
        assert_eq!(p.total_links(), 2);
        best_route(&mut p, 0, 1);
        assert_eq!(p.path(Flow::from_indices(0, 3)).unwrap(), &[0, 1]);
        assert_eq!(p.total_links(), 1);
        p.assert_consistent();
    }

    #[test]
    fn best_route_never_increases_cost() {
        let flows = [(0usize, 2usize), (1, 3)];
        let cliques = CliqueSet::from_cliques([Clique::from(flows)]);
        let mut contention = ContentionSet::new();
        contention.insert((0, 2).into(), (1, 3).into());
        let pattern =
            AppPattern::from_parts(4, flows.iter().map(|&f| f.into()), contention, cliques);
        let mut p = crate::Partitioning::megaswitch(&pattern).unwrap();
        let config = SynthesisConfig::new().with_max_degree(3).with_seed(2);
        crate::partition::run(&mut p, &config);
        // Repeated applications from any sibling pair must be monotone
        // non-increasing in the link estimate.
        for si in 0..p.n_switches() {
            for sj in 0..p.n_switches() {
                if si == sj {
                    continue;
                }
                let before = p.total_links();
                best_route(&mut p, si, sj);
                assert!(p.total_links() <= before);
                p.assert_consistent();
            }
        }
    }
}
