//! The unified synthesis entry point: one request object shared by the
//! CLI, the engine batch API, and the serve daemon.
//!
//! Before this type existed every caller re-assembled its own
//! `(pattern, config, seed, restarts, deadline, ...)` tuple, and adding a
//! second synthesis mode (decomposition) would have doubled that
//! plumbing in four places. A [`SynthesisRequest`] bundles everything a
//! synthesis job needs — the pattern, the [`SynthesisConfig`], the mode
//! (flat or decomposed), an optional per-job deadline, and whether a
//! certificate should be emitted — behind a validating builder.
//!
//! The request's [`canonical_form`](SynthesisRequest::canonical_form) is
//! the cache-key half of the serve daemon's content addressing: it
//! extends the config's canonical form with the mode fields, so a flat
//! and a decomposed job over the same config can never collide. The
//! deadline and the certificate flag are deliberately *absent* from the
//! form — neither changes the synthesized result.

use std::fmt;
use std::time::Duration;

use nocsyn_model::CanonicalForm;

use crate::{AppPattern, SynthesisConfig};

/// How the request's pattern is synthesized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SynthesisMode {
    /// One flat run of the Main Partitioning Algorithm (the paper's
    /// published methodology).
    #[default]
    Flat,
    /// Clustered decomposition: partition the flow graph, synthesize each
    /// cluster independently, stitch with dedicated inter-cluster pipes
    /// and re-verify Theorem 1 globally (see `crate::decompose`).
    Decomposed {
        /// Requested cluster count; `None` picks one from the pattern
        /// size ([`crate::auto_cluster_count`]).
        clusters: Option<usize>,
    },
}

/// A typed, fingerprinted rejection from [`SynthesisRequestBuilder::build`].
///
/// Follows the uniform-error contract: every variant carries a stable
/// kebab-case [`fingerprint`](RequestBuildError::fingerprint) suitable
/// for wire protocols and log grepping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RequestBuildError {
    /// `restarts(0)` was requested. Zero restarts would mean "run no
    /// synthesis at all"; the old config-level API silently clamped this
    /// to one, hiding caller bugs. The request builder rejects it.
    ZeroRestarts,
    /// `Decomposed { clusters: Some(0) }` was requested; a decomposition
    /// into zero clusters is meaningless.
    ZeroClusters,
}

impl RequestBuildError {
    /// Stable kebab-case fingerprint of the error kind.
    pub fn fingerprint(&self) -> &'static str {
        match self {
            RequestBuildError::ZeroRestarts => "zero-restarts",
            RequestBuildError::ZeroClusters => "zero-clusters",
        }
    }
}

impl fmt::Display for RequestBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestBuildError::ZeroRestarts => {
                write!(f, "restarts must be at least 1 (got 0)")
            }
            RequestBuildError::ZeroClusters => {
                write!(f, "cluster count must be at least 1 (got 0)")
            }
        }
    }
}

impl std::error::Error for RequestBuildError {}

/// A fully validated synthesis job description.
///
/// Construct one through [`SynthesisRequest::builder`]; the builder is the
/// single place request-level invariants (non-zero restarts, non-zero
/// cluster count) are enforced.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisRequest {
    pattern: AppPattern,
    config: SynthesisConfig,
    mode: SynthesisMode,
    deadline: Option<Duration>,
    emit_certificate: bool,
}

impl SynthesisRequest {
    /// Starts building a request for `pattern` with paper-default
    /// configuration, flat mode, no deadline and no certificate.
    pub fn builder(pattern: AppPattern) -> SynthesisRequestBuilder {
        SynthesisRequestBuilder {
            pattern,
            config: SynthesisConfig::new(),
            seed: None,
            restarts: None,
            max_degree: None,
            mode: SynthesisMode::Flat,
            deadline: None,
            emit_certificate: false,
        }
    }

    /// The communication pattern to synthesize for.
    pub fn pattern(&self) -> &AppPattern {
        &self.pattern
    }

    /// The synthesis configuration.
    pub fn config(&self) -> &SynthesisConfig {
        &self.config
    }

    /// The synthesis mode.
    pub fn mode(&self) -> SynthesisMode {
        self.mode
    }

    /// Optional per-job deadline (per cluster job in decomposed mode).
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// Whether the caller intends to emit a certificate for the result.
    pub fn emit_certificate(&self) -> bool {
        self.emit_certificate
    }

    /// The request's RNG seed (shorthand for `config().seed()`).
    pub fn seed(&self) -> u64 {
        self.config.seed()
    }

    /// Replaces the configuration wholesale. Used by admission control
    /// (the serve daemon caps restarts per job *after* validation); the
    /// config type's own invariants (`restarts >= 1`) still hold.
    #[must_use]
    pub fn with_config(mut self, config: SynthesisConfig) -> Self {
        self.config = config;
        self
    }

    /// The request's canonical form: the config's canonical form plus the
    /// mode fields. This is what cache keys must digest — a flat and a
    /// decomposed request over the same config always differ here, and
    /// an explicit cluster count differs from `auto`.
    ///
    /// The deadline and the certificate flag are excluded on purpose:
    /// neither influences the synthesized bytes (see
    /// [`SynthesisConfig::canonical_form`] for the same contract at the
    /// config level).
    pub fn canonical_form(&self) -> CanonicalForm {
        let mut form = self.config.canonical_form();
        match self.mode {
            SynthesisMode::Flat => form.push_field("mode", "flat"),
            SynthesisMode::Decomposed { clusters } => {
                form.push_field("mode", "decomposed");
                match clusters {
                    None => form.push_field("clusters", "auto"),
                    Some(k) => form.push_field("clusters", k),
                }
            }
        }
        form
    }
}

/// Builder for [`SynthesisRequest`]; see [`SynthesisRequest::builder`].
#[derive(Debug, Clone)]
pub struct SynthesisRequestBuilder {
    pattern: AppPattern,
    config: SynthesisConfig,
    seed: Option<u64>,
    restarts: Option<usize>,
    max_degree: Option<usize>,
    mode: SynthesisMode,
    deadline: Option<Duration>,
    emit_certificate: bool,
}

impl SynthesisRequestBuilder {
    /// Replaces the base configuration (later `seed`/`restarts`/
    /// `max_degree` calls still override its fields).
    #[must_use]
    pub fn config(mut self, config: SynthesisConfig) -> Self {
        self.config = config;
        self
    }

    /// Overrides the RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Overrides the restart count. Zero is **rejected** at
    /// [`build`](SynthesisRequestBuilder::build) with
    /// [`RequestBuildError::ZeroRestarts`] — unlike
    /// [`SynthesisConfig::with_restarts`], which clamps.
    #[must_use]
    pub fn restarts(mut self, restarts: usize) -> Self {
        self.restarts = Some(restarts);
        self
    }

    /// Overrides the maximum node degree.
    #[must_use]
    pub fn max_degree(mut self, degree: usize) -> Self {
        self.max_degree = Some(degree);
        self
    }

    /// Selects the synthesis mode.
    #[must_use]
    pub fn mode(mut self, mode: SynthesisMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the per-job deadline.
    #[must_use]
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the per-job deadline in milliseconds.
    #[must_use]
    pub fn deadline_ms(self, ms: u64) -> Self {
        self.deadline(Duration::from_millis(ms))
    }

    /// Declares that the caller will emit a certificate for the result.
    #[must_use]
    pub fn emit_certificate(mut self, emit: bool) -> Self {
        self.emit_certificate = emit;
        self
    }

    /// Validates and assembles the request.
    ///
    /// # Errors
    ///
    /// * [`RequestBuildError::ZeroRestarts`] if `restarts(0)` was called.
    /// * [`RequestBuildError::ZeroClusters`] if the mode is
    ///   `Decomposed { clusters: Some(0) }`.
    pub fn build(self) -> Result<SynthesisRequest, RequestBuildError> {
        if self.restarts == Some(0) {
            return Err(RequestBuildError::ZeroRestarts);
        }
        if let SynthesisMode::Decomposed { clusters: Some(0) } = self.mode {
            return Err(RequestBuildError::ZeroClusters);
        }
        let mut config = self.config;
        if let Some(seed) = self.seed {
            config = config.with_seed(seed);
        }
        if let Some(restarts) = self.restarts {
            config = config.with_restarts(restarts);
        }
        if let Some(degree) = self.max_degree {
            config = config.with_max_degree(degree);
        }
        Ok(SynthesisRequest {
            pattern: self.pattern,
            config,
            mode: self.mode,
            deadline: self.deadline,
            emit_certificate: self.emit_certificate,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocsyn_model::{Phase, PhaseSchedule};

    fn pattern4() -> AppPattern {
        let mut s = PhaseSchedule::new(4);
        s.push(Phase::from_flows([(0usize, 1usize), (2, 3)]).expect("valid"))
            .expect("in range");
        AppPattern::from_schedule(&s)
    }

    #[test]
    fn builder_applies_overrides_in_any_call_order() {
        let a = SynthesisRequest::builder(pattern4())
            .seed(9)
            .restarts(3)
            .max_degree(4)
            .build()
            .expect("valid");
        let b = SynthesisRequest::builder(pattern4())
            .max_degree(4)
            .restarts(3)
            .seed(9)
            .build()
            .expect("valid");
        assert_eq!(a, b);
        assert_eq!(a.config().seed(), 9);
        assert_eq!(a.config().restarts(), 3);
        assert_eq!(a.config().max_degree(), 4);
        assert_eq!(
            a.canonical_form().digest(),
            b.canonical_form().digest(),
            "canonical form must be stable under setter reordering"
        );
    }

    #[test]
    fn zero_restarts_is_rejected_not_clamped() {
        let err = SynthesisRequest::builder(pattern4())
            .restarts(0)
            .build()
            .expect_err("zero restarts must be rejected");
        assert_eq!(err, RequestBuildError::ZeroRestarts);
        assert_eq!(err.fingerprint(), "zero-restarts");
        // The config-level clamp is unchanged: the *request* layer is
        // where explicit zeroes become typed errors.
        assert_eq!(SynthesisConfig::new().with_restarts(0).restarts(), 1);
    }

    #[test]
    fn zero_clusters_is_rejected() {
        let err = SynthesisRequest::builder(pattern4())
            .mode(SynthesisMode::Decomposed { clusters: Some(0) })
            .build()
            .expect_err("zero clusters must be rejected");
        assert_eq!(err, RequestBuildError::ZeroClusters);
        assert_eq!(err.fingerprint(), "zero-clusters");
    }

    #[test]
    fn flat_and_decomposed_forms_never_collide() {
        let flat = SynthesisRequest::builder(pattern4()).build().expect("ok");
        let auto = SynthesisRequest::builder(pattern4())
            .mode(SynthesisMode::Decomposed { clusters: None })
            .build()
            .expect("ok");
        let four = SynthesisRequest::builder(pattern4())
            .mode(SynthesisMode::Decomposed { clusters: Some(4) })
            .build()
            .expect("ok");
        let d_flat = flat.canonical_form().digest();
        let d_auto = auto.canonical_form().digest();
        let d_four = four.canonical_form().digest();
        assert_ne!(d_flat, d_auto);
        assert_ne!(d_flat, d_four);
        assert_ne!(d_auto, d_four);
    }

    #[test]
    fn deadline_and_cert_flag_do_not_change_the_canonical_form() {
        let plain = SynthesisRequest::builder(pattern4()).build().expect("ok");
        let decorated = SynthesisRequest::builder(pattern4())
            .deadline_ms(250)
            .emit_certificate(true)
            .build()
            .expect("ok");
        assert_eq!(
            plain.canonical_form().digest(),
            decorated.canonical_form().digest()
        );
        assert_eq!(decorated.deadline(), Some(Duration::from_millis(250)));
        assert!(decorated.emit_certificate());
    }

    #[test]
    fn error_messages_are_human_readable() {
        assert_eq!(
            RequestBuildError::ZeroRestarts.to_string(),
            "restarts must be at least 1 (got 0)"
        );
        assert_eq!(
            RequestBuildError::ZeroClusters.to_string(),
            "cluster count must be at least 1 (got 0)"
        );
    }
}
