//! Human-readable synthesis explanations.
//!
//! `synthesize` returns a network and routes; this module reconstructs
//! the *why* for review: which processors share each switch, which flows
//! cross each pipe in which direction, and how the pipe's link count
//! relates to the worst concurrent demand (the `Fast_Color` bound).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use nocsyn_coloring::fast_color;
use nocsyn_model::Flow;
use nocsyn_topo::NodeRef;

use crate::{AppPattern, SynthesisResult};

/// Renders a per-switch, per-pipe breakdown of a synthesis result.
///
/// ```
/// use nocsyn_model::{Phase, PhaseSchedule};
/// use nocsyn_synth::{explain, synthesize, AppPattern, SynthesisConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut sched = PhaseSchedule::new(4);
/// sched.push(Phase::from_flows([(0usize, 2usize), (1, 3)])?)?;
/// let pattern = AppPattern::from_schedule(&sched);
/// let result = synthesize(&pattern, &SynthesisConfig::new().with_restarts(2))?;
/// let text = explain(&result, &pattern);
/// assert!(text.contains("switches"));
/// # Ok(())
/// # }
/// ```
pub fn explain(result: &SynthesisResult, pattern: &AppPattern) -> String {
    let net = &result.network;
    let mut out = String::new();
    let _ = writeln!(out, "{}", result.report);
    let _ = writeln!(out);

    // Switch membership.
    let _ = writeln!(out, "switches:");
    for s in net.switch_ids() {
        let attached: Vec<String> = net
            .switch(s)
            .expect("iterating ids")
            .attached()
            .iter()
            .map(|p| p.to_string())
            .collect();
        let _ = writeln!(
            out,
            "  {s}: [{}] — {} of {} ports used",
            attached.join(", "),
            net.degree(s),
            net.degree(s).max(result.report.max_degree)
        );
    }

    // Pipes: group parallel links by switch pair and recover crossing
    // flows from the route table.
    let mut pipe_links: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for link in net.link_ids() {
        let l = net.link(link).expect("iterating links");
        if let (NodeRef::Switch(a), NodeRef::Switch(b)) = (l.a(), l.b()) {
            let key = (a.index().min(b.index()), a.index().max(b.index()));
            *pipe_links.entry(key).or_insert(0) += 1;
        }
    }
    let mut crossing: BTreeMap<(usize, usize), (BTreeSet<Flow>, BTreeSet<Flow>)> = BTreeMap::new();
    for (flow, route) in result.routes.iter() {
        for ch in route.iter() {
            let Ok((tail, head)) = net.channel_endpoints(ch) else {
                continue;
            };
            if let (NodeRef::Switch(a), NodeRef::Switch(b)) = (tail, head) {
                let key = (a.index().min(b.index()), a.index().max(b.index()));
                let entry = crossing.entry(key).or_default();
                if a.index() <= b.index() {
                    entry.0.insert(flow);
                } else {
                    entry.1.insert(flow);
                }
            }
        }
    }

    let _ = writeln!(out);
    let _ = writeln!(out, "pipes:");
    for (&(a, b), &links) in &pipe_links {
        let (fwd, bwd) = crossing.get(&(a, b)).cloned().unwrap_or_default();
        let demand = fast_color(pattern.cliques(), &fwd, &bwd);
        let _ = writeln!(
            out,
            "  S{a} -- S{b}: {links} link(s); worst concurrent demand {demand}"
        );
        let list = |set: &BTreeSet<Flow>| {
            set.iter()
                .map(Flow::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        };
        if !fwd.is_empty() {
            let _ = writeln!(out, "      S{a}->S{b}: {}", list(&fwd));
        }
        if !bwd.is_empty() {
            let _ = writeln!(out, "      S{b}->S{a}: {}", list(&bwd));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{synthesize, SynthesisConfig};
    use nocsyn_model::{Phase, PhaseSchedule};

    fn result_and_pattern() -> (SynthesisResult, AppPattern) {
        let mut sched = PhaseSchedule::new(6);
        sched
            .push(Phase::from_flows([(0usize, 3usize), (1, 4), (2, 5)]).unwrap())
            .unwrap();
        sched
            .push(Phase::from_flows([(3usize, 0usize), (4, 1), (5, 2)]).unwrap())
            .unwrap();
        let pattern = AppPattern::from_schedule(&sched);
        let config = SynthesisConfig::new()
            .with_max_degree(4)
            .with_seed(8)
            .with_restarts(2);
        (synthesize(&pattern, &config).unwrap(), pattern)
    }

    #[test]
    fn explanation_covers_every_pipe_and_switch() {
        let (result, pattern) = result_and_pattern();
        let text = explain(&result, &pattern);
        for s in result.network.switch_ids() {
            assert!(text.contains(&format!("{s}:")), "missing switch {s}");
        }
        assert!(text.contains("pipes:"));
        assert!(text.contains("worst concurrent demand"));
    }

    #[test]
    fn demand_never_exceeds_provisioned_links() {
        // The explanation's recomputed demand must be covered by the
        // materialized link counts (that is the whole point of formal
        // coloring).
        let (result, pattern) = result_and_pattern();
        let text = explain(&result, &pattern);
        let mut checked = 0;
        for line in text.lines() {
            let Some((head, demand_str)) = line.split_once(" link(s); worst concurrent demand ")
            else {
                continue;
            };
            let links: usize = head
                .rsplit(':')
                .next()
                .expect("rsplit yields at least one piece")
                .trim()
                .parse()
                .expect("link count is an integer");
            let demand: usize = demand_str.trim().parse().expect("demand is an integer");
            assert!(demand <= links, "under-provisioned pipe: {line}");
            checked += 1;
        }
        assert!(checked > 0, "no pipe lines found in:\n{text}");
    }
}
