//! The independent certificate checker behind `nocsyn certify`.
//!
//! This crate validates a contention-freedom
//! [`Certificate`](nocsyn_model::Certificate) against the pattern text it
//! claims to speak about, using **set arithmetic only**: it re-derives the
//! potential contention set `C` and the maximum clique set `K` from the
//! pattern with `nocsyn-model` primitives, then checks every `C ∩ R = ∅`
//! obligation by intersecting the certificate's per-route channel-label
//! sets. It deliberately depends on nothing but `nocsyn-model` — no
//! synthesis, annealing, routing, or network code — so a bug in the
//! synthesizer cannot also hide in the checker (the crate dependency
//! graph enforces the trust boundary).
//!
//! Every rejection is typed and carries a stable kebab-case fingerprint,
//! so hostile certificates (fuzzed, tampered, or stale cache entries)
//! yield deterministic classifications rather than panics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use nocsyn_model::{
    CertError, Certificate, CliqueSet, ContentionSet, Digest, Flow, FlowPair, ParseLimits,
    ParseOptions, ParseScheduleError,
};

/// Checker configuration: the resource budget applied to both the
/// certificate text and the pattern text.
#[derive(Debug, Clone, Default)]
pub struct CheckOptions {
    limits: ParseLimits,
}

impl CheckOptions {
    /// Default budgets (same defaults as pattern parsing).
    pub fn new() -> Self {
        CheckOptions::default()
    }

    /// Replaces the resource limits.
    #[must_use]
    pub fn with_limits(mut self, limits: ParseLimits) -> Self {
        self.limits = limits;
        self
    }

    /// The configured limits.
    pub fn limits(&self) -> &ParseLimits {
        &self.limits
    }
}

/// One violated `C ∩ R = ∅` obligation found by the checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObligationViolation {
    /// The contention pair whose routes collide.
    pub pair: FlowPair,
    /// The channel labels shared by the two resource sets (sorted).
    pub shared: Vec<String>,
}

impl fmt::Display for ObligationViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} and {} share {}",
            self.pair.first(),
            self.pair.second(),
            self.shared.join(" ")
        )
    }
}

/// A successfully validated certificate, summarized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckSummary {
    /// The (validated) verdict the certificate proves.
    pub contention_free: bool,
    /// The recomputed binding digest, hex.
    pub binding: String,
    /// Obligations checked for disjointness.
    pub n_obligations: usize,
    /// Routed flows covered by the certificate.
    pub n_routes: usize,
    /// Flows of the pattern (coverage denominator: a certificate may
    /// legitimately route fewer flows, e.g. after fault repair).
    pub n_flows: usize,
    /// Cliques in the recomputed (and matching) maximum clique set.
    pub n_cliques: usize,
    /// Declared-and-confirmed contention witnesses.
    pub n_witnesses: usize,
}

/// Why a certificate was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejection {
    /// The certificate text failed bounded parsing.
    Cert(CertError),
    /// The pattern text failed bounded parsing.
    Pattern(ParseScheduleError),
    /// The claimed binding digest does not match the payload.
    BindingMismatch,
    /// The certificate is bound to a different job fingerprint than the
    /// caller expected (or to none at all).
    JobMismatch,
    /// The certificate's process count disagrees with the pattern.
    PatternMismatch,
    /// A route covers a flow the pattern never performs.
    RouteUnknown(Flow),
    /// The clique set disagrees with the recomputed maximum clique set.
    CliqueMismatch,
    /// A contention pair with both ends routed has no obligation entry.
    ObligationMissing(FlowPair),
    /// An obligation names a pair outside the recomputed contention set.
    ObligationUnknown(FlowPair),
    /// The crossing flow sets are not the exact inverse of the routes.
    CrossingMismatch(String),
    /// A declared witness does not match the recomputed collisions.
    WitnessInvalid(String),
    /// The certificate claims contention freedom but obligations are
    /// violated; carries the full typed violation report.
    ObligationViolated(Vec<ObligationViolation>),
}

impl Rejection {
    /// Stable kebab-case fingerprint for this rejection class.
    pub fn fingerprint(&self) -> &'static str {
        match self {
            Rejection::Cert(e) => e.fingerprint(),
            Rejection::Pattern(_) => "pattern-rejected",
            Rejection::BindingMismatch => "cert-binding-mismatch",
            Rejection::JobMismatch => "cert-job-mismatch",
            Rejection::PatternMismatch => "cert-pattern-mismatch",
            Rejection::RouteUnknown(_) => "cert-route-unknown",
            Rejection::CliqueMismatch => "cert-clique-mismatch",
            Rejection::ObligationMissing(_) => "cert-obligation-missing",
            Rejection::ObligationUnknown(_) => "cert-obligation-unknown",
            Rejection::CrossingMismatch(_) => "cert-crossing-mismatch",
            Rejection::WitnessInvalid(_) => "cert-witness-invalid",
            Rejection::ObligationViolated(_) => "obligation-violated",
        }
    }

    /// The violation report, when the rejection is `obligation-violated`.
    pub fn violations(&self) -> &[ObligationViolation] {
        match self {
            Rejection::ObligationViolated(v) => v,
            _ => &[],
        }
    }
}

impl fmt::Display for Rejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejection::Cert(e) => write!(f, "{e}"),
            Rejection::Pattern(e) => write!(f, "pattern rejected: {e}"),
            Rejection::BindingMismatch => {
                write!(f, "binding digest does not match the certificate payload")
            }
            Rejection::JobMismatch => {
                write!(
                    f,
                    "certificate is not bound to the expected job fingerprint"
                )
            }
            Rejection::PatternMismatch => {
                write!(f, "certificate process count disagrees with the pattern")
            }
            Rejection::RouteUnknown(flow) => {
                write!(f, "route covers {flow}, which the pattern never performs")
            }
            Rejection::CliqueMismatch => {
                write!(
                    f,
                    "clique set disagrees with the recomputed maximum clique set"
                )
            }
            Rejection::ObligationMissing(p) => write!(
                f,
                "contention pair {} | {} has no obligation entry",
                p.first(),
                p.second()
            ),
            Rejection::ObligationUnknown(p) => write!(
                f,
                "obligation {} | {} is outside the recomputed contention set",
                p.first(),
                p.second()
            ),
            Rejection::CrossingMismatch(ch) => {
                write!(f, "crossing set of channel {ch} does not invert the routes")
            }
            Rejection::WitnessInvalid(why) => write!(f, "witness list is wrong: {why}"),
            Rejection::ObligationViolated(v) => {
                write!(f, "{} obligation(s) violated:", v.len())?;
                for viol in v {
                    write!(f, " [{viol}]")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for Rejection {}

/// The pattern facts the checker re-derives with model-only code.
struct Recomputed {
    n_procs: usize,
    flows: BTreeSet<Flow>,
    contention: ContentionSet,
    cliques: CliqueSet,
}

/// Re-characterizes pattern text exactly the way synthesis ingress does
/// (trace vs schedule autodetected by `msg ` lines), using only
/// `nocsyn-model` computations.
fn characterize(text: &str, opts: &ParseOptions) -> Result<Recomputed, ParseScheduleError> {
    let is_trace = text
        .lines()
        .map(|l| l.split('#').next().unwrap_or("").trim())
        .any(|l| l.starts_with("msg "));
    if is_trace {
        let trace = opts.parse_trace(text)?;
        Ok(Recomputed {
            n_procs: trace.n_procs(),
            flows: trace.flows().into_iter().collect(),
            contention: trace.contention_set(),
            cliques: trace.maximum_clique_set(),
        })
    } else {
        let schedule = opts.parse_schedule(text)?;
        let mut contention = ContentionSet::new();
        for phase in schedule.iter() {
            let flows: Vec<Flow> = phase.iter().collect();
            for i in 0..flows.len() {
                for j in i + 1..flows.len() {
                    contention.insert(flows[i], flows[j]);
                }
            }
        }
        Ok(Recomputed {
            n_procs: schedule.n_procs(),
            flows: schedule.all_flows().into_iter().collect(),
            contention,
            cliques: schedule.maximum_clique_set(),
        })
    }
}

fn normalized_cliques<'a, I: IntoIterator<Item = &'a Vec<Flow>>>(
    cliques: I,
) -> BTreeSet<Vec<Flow>> {
    cliques
        .into_iter()
        .map(|c| {
            let mut c: Vec<Flow> = c.clone();
            c.sort();
            c.dedup();
            c
        })
        .collect()
}

/// Validates `cert_text` against `pattern_text`.
///
/// When `expected_job` is given (e.g. the serve cache validating a disk
/// entry against its key), the certificate must be bound to exactly that
/// job-fingerprint digest.
///
/// A certificate that *declares* contention violations is accepted when
/// its witness list exactly matches the recomputed collisions — such a
/// certificate correctly proves non-freedom. A certificate that claims
/// freedom while an obligation is violated is rejected with the typed
/// violation report.
///
/// # Errors
///
/// A [`Rejection`] with a stable fingerprint on any parse failure,
/// binding or job mismatch, or semantic disagreement with the pattern.
pub fn check_certificate(
    pattern_text: &str,
    cert_text: &str,
    expected_job: Option<&Digest>,
    opts: &CheckOptions,
) -> Result<CheckSummary, Rejection> {
    let cert = Certificate::parse(cert_text, &opts.limits).map_err(Rejection::Cert)?;
    if !cert.verify_binding() {
        return Err(Rejection::BindingMismatch);
    }
    if let Some(expected) = expected_job {
        if cert.job.as_deref() != Some(expected.to_hex().as_str()) {
            return Err(Rejection::JobMismatch);
        }
    }

    let parse_opts = ParseOptions::new().with_limits(opts.limits.clone());
    let pattern = characterize(pattern_text, &parse_opts).map_err(Rejection::Pattern)?;
    if cert.n_procs != pattern.n_procs {
        return Err(Rejection::PatternMismatch);
    }
    for flow in cert.routes.keys() {
        if !pattern.flows.contains(flow) {
            return Err(Rejection::RouteUnknown(*flow));
        }
    }

    // K: the declared clique set must be exactly the recomputed maximum
    // clique set (as sets of flow sets).
    if normalized_cliques(&cert.cliques)
        != normalized_cliques(
            pattern
                .cliques
                .iter()
                .map(|c| c.iter().collect::<Vec<Flow>>())
                .collect::<Vec<_>>()
                .iter(),
        )
    {
        return Err(Rejection::CliqueMismatch);
    }

    // C restricted to routed flows: declared obligations must cover it
    // exactly.
    let expected_obligations: BTreeSet<FlowPair> = pattern
        .contention
        .iter()
        .filter(|p| cert.routes.contains_key(&p.first()) && cert.routes.contains_key(&p.second()))
        .collect();
    let declared: BTreeSet<FlowPair> = cert.obligations.iter().copied().collect();
    if let Some(missing) = expected_obligations.difference(&declared).next() {
        return Err(Rejection::ObligationMissing(*missing));
    }
    if let Some(unknown) = declared.difference(&expected_obligations).next() {
        return Err(Rejection::ObligationUnknown(*unknown));
    }

    // Crossings must be the exact inverse of the routes.
    let mut inverse: BTreeMap<String, Vec<Flow>> = BTreeMap::new();
    for (flow, chans) in &cert.routes {
        for ch in chans {
            inverse.entry(ch.clone()).or_default().push(*flow);
        }
    }
    for (ch, flows) in &inverse {
        if cert.crossings.get(ch) != Some(flows) {
            return Err(Rejection::CrossingMismatch(ch.clone()));
        }
    }
    if let Some(extra) = cert.crossings.keys().find(|ch| !inverse.contains_key(*ch)) {
        return Err(Rejection::CrossingMismatch(extra.clone()));
    }

    // The obligations themselves: R-disjointness by label-set
    // intersection.
    let mut violations = Vec::new();
    for pair in &declared {
        let (Some(ra), Some(rb)) = (
            cert.routes.get(&pair.first()),
            cert.routes.get(&pair.second()),
        ) else {
            // Unreachable: obligations were checked against routed flows.
            return Err(Rejection::ObligationUnknown(*pair));
        };
        let shared: Vec<String> = ra
            .iter()
            .filter(|ch| rb.binary_search(ch).is_ok())
            .cloned()
            .collect();
        if !shared.is_empty() {
            violations.push(ObligationViolation {
                pair: *pair,
                shared,
            });
        }
    }

    // Verdict and witness coherence.
    if cert.contention_free {
        if !violations.is_empty() {
            return Err(Rejection::ObligationViolated(violations));
        }
        if !cert.witnesses.is_empty() {
            return Err(Rejection::WitnessInvalid(
                "a contention-free certificate declares witnesses".to_string(),
            ));
        }
    } else {
        let declared_witnesses: BTreeMap<FlowPair, Vec<String>> = cert
            .witnesses
            .iter()
            .map(|w| (w.pair, w.shared.clone()))
            .collect();
        if declared_witnesses.len() != cert.witnesses.len() {
            return Err(Rejection::WitnessInvalid(
                "duplicate witness pairs".to_string(),
            ));
        }
        let found: BTreeMap<FlowPair, Vec<String>> = violations
            .iter()
            .map(|v| (v.pair, v.shared.clone()))
            .collect();
        if declared_witnesses != found {
            return Err(Rejection::WitnessInvalid(
                "declared witnesses disagree with the recomputed collisions".to_string(),
            ));
        }
        if violations.is_empty() {
            return Err(Rejection::WitnessInvalid(
                "certificate claims contention but every obligation holds".to_string(),
            ));
        }
    }

    Ok(CheckSummary {
        contention_free: cert.contention_free,
        binding: cert.binding().to_hex(),
        n_obligations: declared.len(),
        n_routes: cert.routes.len(),
        n_flows: pattern.flows.len(),
        n_cliques: pattern.cliques.len(),
        n_witnesses: cert.witnesses.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocsyn_model::CertWitness;
    use std::collections::BTreeMap;

    const PATTERN: &str = "procs 4\nphase\n  0 -> 1\n  2 -> 3\nphase\n  1 -> 2\n  3 -> 0\n";

    /// A hand-routed, genuinely contention-free certificate for PATTERN:
    /// each flow crosses its own private channel.
    fn good_cert() -> Certificate {
        let flows = [(0usize, 1usize), (2, 3), (1, 2), (3, 0)];
        let mut routes = BTreeMap::new();
        let mut crossings: BTreeMap<String, Vec<Flow>> = BTreeMap::new();
        for (i, (s, d)) in flows.iter().enumerate() {
            let flow = Flow::from_indices(*s, *d);
            let label = format!("L{i}+");
            routes.insert(flow, vec![label.clone()]);
            crossings.entry(label).or_default().push(flow);
        }
        let schedule = nocsyn_model::parse_schedule(PATTERN).expect("pattern is valid");
        let cliques = schedule
            .maximum_clique_set()
            .iter()
            .map(|c| c.iter().collect())
            .collect();
        let obligations = vec![
            FlowPair::new(Flow::from_indices(0, 1), Flow::from_indices(2, 3)),
            FlowPair::new(Flow::from_indices(1, 2), Flow::from_indices(3, 0)),
        ];
        Certificate {
            n_procs: 4,
            contention_free: true,
            cliques,
            obligations,
            routes,
            crossings,
            witnesses: Vec::new(),
            job: None,
            claimed_binding: None,
        }
    }

    fn check(cert: &Certificate) -> Result<CheckSummary, Rejection> {
        check_certificate(PATTERN, &cert.to_json(), None, &CheckOptions::new())
    }

    #[test]
    fn a_faithful_certificate_validates() {
        let summary = check(&good_cert()).expect("valid certificate");
        assert!(summary.contention_free);
        assert_eq!(summary.n_obligations, 2);
        assert_eq!(summary.n_routes, 4);
        assert_eq!(summary.n_flows, 4);
        assert_eq!(summary.n_witnesses, 0);
    }

    #[test]
    fn dropped_obligation_is_rejected() {
        let mut cert = good_cert();
        cert.obligations.pop();
        let err = check(&cert).expect_err("must reject");
        assert_eq!(err.fingerprint(), "cert-obligation-missing");
    }

    #[test]
    fn forged_obligation_is_rejected() {
        let mut cert = good_cert();
        cert.obligations.push(FlowPair::new(
            Flow::from_indices(0, 1),
            Flow::from_indices(1, 2),
        ));
        let err = check(&cert).expect_err("must reject");
        assert_eq!(err.fingerprint(), "cert-obligation-unknown");
    }

    #[test]
    fn forged_clique_is_rejected() {
        let mut cert = good_cert();
        cert.cliques.pop();
        let err = check(&cert).expect_err("must reject");
        assert_eq!(err.fingerprint(), "cert-clique-mismatch");
    }

    #[test]
    fn crossing_inconsistency_is_rejected() {
        let mut cert = good_cert();
        // Omit a channel from a route's resource set without fixing the
        // crossing list.
        let flow = Flow::from_indices(0, 1);
        cert.routes.insert(flow, Vec::new());
        let err = check(&cert).expect_err("must reject");
        assert_eq!(err.fingerprint(), "cert-crossing-mismatch");
    }

    #[test]
    fn false_freedom_claim_yields_typed_violations() {
        let mut cert = good_cert();
        // Collapse two contending flows onto one channel.
        let a = Flow::from_indices(0, 1);
        let b = Flow::from_indices(2, 3);
        cert.routes.insert(a, vec!["SH".to_string()]);
        cert.routes.insert(b, vec!["SH".to_string()]);
        cert.crossings.clear();
        for (flow, chans) in &cert.routes {
            for ch in chans {
                cert.crossings.entry(ch.clone()).or_default().push(*flow);
            }
        }
        let err = check(&cert).expect_err("must reject");
        assert_eq!(err.fingerprint(), "obligation-violated");
        let v = err.violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].pair, FlowPair::new(a, b));
        assert_eq!(v[0].shared, vec!["SH".to_string()]);
    }

    #[test]
    fn declared_contention_with_matching_witness_validates() {
        let mut cert = good_cert();
        let a = Flow::from_indices(0, 1);
        let b = Flow::from_indices(2, 3);
        cert.routes.insert(a, vec!["SH".to_string()]);
        cert.routes.insert(b, vec!["SH".to_string()]);
        cert.crossings.clear();
        for (flow, chans) in &cert.routes {
            for ch in chans {
                cert.crossings.entry(ch.clone()).or_default().push(*flow);
            }
        }
        cert.contention_free = false;
        cert.witnesses = vec![CertWitness {
            pair: FlowPair::new(a, b),
            shared: vec!["SH".to_string()],
        }];
        let summary = check(&cert).expect("a correct non-freedom proof validates");
        assert!(!summary.contention_free);
        assert_eq!(summary.n_witnesses, 1);
    }

    #[test]
    fn textual_tamper_is_a_binding_mismatch() {
        let text = good_cert().to_json();
        let tampered = text.replacen("\"channels\":[\"L0+\"]", "\"channels\":[]", 1);
        assert_ne!(text, tampered);
        let err = check_certificate(PATTERN, &tampered, None, &CheckOptions::new())
            .expect_err("must reject");
        assert_eq!(err.fingerprint(), "cert-binding-mismatch");
    }

    #[test]
    fn job_binding_is_enforced_when_expected() {
        let expected = nocsyn_model::sha256(b"job-key");
        let mut cert = good_cert();
        let err = check_certificate(
            PATTERN,
            &cert.to_json(),
            Some(&expected),
            &CheckOptions::new(),
        )
        .expect_err("unbound certificate");
        assert_eq!(err.fingerprint(), "cert-job-mismatch");
        cert.job = Some(expected.to_hex());
        check_certificate(
            PATTERN,
            &cert.to_json(),
            Some(&expected),
            &CheckOptions::new(),
        )
        .expect("bound certificate validates");
    }

    #[test]
    fn wrong_pattern_and_garbage_are_typed() {
        let cert = good_cert();
        let err = check_certificate(
            "procs 8\nphase\n  0 -> 1\n",
            &cert.to_json(),
            None,
            &CheckOptions::new(),
        )
        .expect_err("wrong pattern");
        assert_eq!(err.fingerprint(), "cert-pattern-mismatch");
        let err = check_certificate(PATTERN, "not json", None, &CheckOptions::new())
            .expect_err("garbage");
        assert!(!err.fingerprint().is_empty());
        let err = check_certificate("wat\n", &cert.to_json(), None, &CheckOptions::new())
            .expect_err("bad pattern text");
        assert_eq!(err.fingerprint(), "pattern-rejected");
    }
}
