//! Synthetic random well-behaved patterns, for property tests and for
//! exercising synthesis beyond the five NAS shapes.

use nocsyn_model::{Flow, Phase, PhaseSchedule};
use nocsyn_rng::Rng;

use crate::WorkloadParams;

/// Generates a schedule of `n_phases` random partial permutations over
/// `n_procs` processes, seeded for reproducibility.
///
/// Each phase pairs a random subset of processes (at least two) under a
/// random permutation with fixed points dropped — a "well-behaved" pattern
/// in the paper's sense: static, characterizable, one partial permutation
/// per contention period.
///
/// # Panics
///
/// Panics if `n_procs < 2`.
pub fn random_permutation_schedule(
    n_procs: usize,
    n_phases: usize,
    seed: u64,
    params: &WorkloadParams,
) -> PhaseSchedule {
    assert!(n_procs >= 2, "need at least two processes to communicate");
    let mut rng = Rng::seed_from_u64(seed);
    let mut sched = PhaseSchedule::new(n_procs);
    for _ in 0..n_phases {
        let mut procs: Vec<usize> = (0..n_procs).collect();
        rng.shuffle(&mut procs);
        // Random participant count in [2, n_procs].
        let take = rng.gen_range(2..=n_procs);
        let mut participants = procs[..take].to_vec();
        participants.sort_unstable();
        let mut targets = participants.clone();
        rng.shuffle(&mut targets);

        let mut phase = Phase::new()
            .with_bytes(params.bytes)
            .with_compute(params.compute_ticks);
        for (&s, &d) in participants.iter().zip(targets.iter()) {
            if s != d {
                phase
                    .add(Flow::from_indices(s, d))
                    .expect("permutation pairing is injective both ways");
            }
        }
        if !phase.is_empty() {
            sched.push(phase).expect("participants are in range");
        }
    }
    sched
}

/// Generates a locality-structured schedule: `n_procs / block` blocks of
/// `block` consecutive processes, each phase a random permutation
/// *within* every block plus `cross_flows` random block-crossing flows.
///
/// This is the scale-out shape of the paper's "well-behaved" workloads —
/// NAS-style kernels communicate overwhelmingly within a neighborhood
/// and only occasionally across it — and the natural stress test for
/// clustered decomposition: an affinity cut should recover the blocks
/// and sever only the cross traffic.
///
/// Every phase remains a partial permutation (each process sources and
/// sinks at most one flow), so the pattern is well-behaved in the
/// paper's single-contention-period sense too.
///
/// # Panics
///
/// Panics if `n_procs < 2` or `block < 2`.
pub fn clustered_permutation_schedule(
    n_procs: usize,
    block: usize,
    n_phases: usize,
    cross_flows: usize,
    seed: u64,
    params: &WorkloadParams,
) -> PhaseSchedule {
    assert!(n_procs >= 2, "need at least two processes to communicate");
    assert!(block >= 2, "blocks need at least two processes");
    let mut rng = Rng::seed_from_u64(seed);
    let mut sched = PhaseSchedule::new(n_procs);
    for _ in 0..n_phases {
        let mut used_src = vec![false; n_procs];
        let mut used_dst = vec![false; n_procs];
        let mut phase = Phase::new()
            .with_bytes(params.bytes)
            .with_compute(params.compute_ticks);
        for start in (0..n_procs).step_by(block) {
            let members: Vec<usize> = (start..(start + block).min(n_procs)).collect();
            let mut targets = members.clone();
            rng.shuffle(&mut targets);
            for (&s, &d) in members.iter().zip(targets.iter()) {
                if s != d {
                    used_src[s] = true;
                    used_dst[d] = true;
                    phase
                        .add(Flow::from_indices(s, d))
                        .expect("block permutation is injective both ways");
                }
            }
        }
        // Cross-block flows between processes the block permutations left
        // idle in the needed direction (fixed points), keeping the phase a
        // partial permutation. Bounded retries keep generation total.
        let mut added = 0;
        for _ in 0..cross_flows * 16 {
            if added == cross_flows {
                break;
            }
            let s = rng.gen_range(0..n_procs);
            let d = rng.gen_range(0..n_procs);
            if s / block == d / block || used_src[s] || used_dst[d] {
                continue;
            }
            used_src[s] = true;
            used_dst[d] = true;
            phase
                .add(Flow::from_indices(s, d))
                .expect("endpoints were unused in this direction");
            added += 1;
        }
        if !phase.is_empty() {
            sched.push(phase).expect("participants are in range");
        }
    }
    sched
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let p = WorkloadParams::default();
        let a = random_permutation_schedule(8, 5, 42, &p);
        let b = random_permutation_schedule(8, 5, 42, &p);
        assert_eq!(a, b);
        let c = random_permutation_schedule(8, 5, 43, &p);
        assert_ne!(a, c);
    }

    #[test]
    fn phases_are_partial_permutations() {
        let p = WorkloadParams::default();
        let sched = random_permutation_schedule(12, 20, 7, &p);
        for phase in sched.iter() {
            let mut sources = std::collections::BTreeSet::new();
            let mut dests = std::collections::BTreeSet::new();
            for f in phase.iter() {
                assert_ne!(f.src, f.dst);
                assert!(sources.insert(f.src), "duplicate source in phase");
                assert!(dests.insert(f.dst), "duplicate destination in phase");
            }
        }
    }

    #[test]
    fn respects_params() {
        let p = WorkloadParams::default().with_bytes(128).with_compute(999);
        let sched = random_permutation_schedule(4, 3, 1, &p);
        for phase in sched.iter() {
            assert_eq!(phase.bytes(), 128);
            assert_eq!(phase.compute_ticks(), 999);
        }
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_tiny_systems() {
        let _ = random_permutation_schedule(1, 1, 0, &WorkloadParams::default());
    }

    #[test]
    fn clustered_schedule_is_local_with_bounded_cross_traffic() {
        let p = WorkloadParams::default();
        let sched = clustered_permutation_schedule(64, 16, 4, 3, 9, &p);
        let mut cross = 0usize;
        let mut local = 0usize;
        for phase in sched.iter() {
            let mut sources = std::collections::BTreeSet::new();
            let mut dests = std::collections::BTreeSet::new();
            for f in phase.iter() {
                assert!(sources.insert(f.src), "duplicate source in phase");
                assert!(dests.insert(f.dst), "duplicate destination in phase");
                if f.src.index() / 16 == f.dst.index() / 16 {
                    local += 1;
                } else {
                    cross += 1;
                }
            }
        }
        assert!(cross <= 3 * 4, "at most cross_flows per phase, got {cross}");
        assert!(
            local > cross * 3,
            "traffic must be dominated by block-local flows ({local} local, {cross} cross)"
        );
        assert_eq!(
            sched,
            clustered_permutation_schedule(64, 16, 4, 3, 9, &p),
            "generation is a pure function of the seed"
        );
    }
}
