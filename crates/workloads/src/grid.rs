//! 2-D logical processor grids used by the benchmark generators.

use std::fmt;

use nocsyn_model::ProcId;

use crate::WorkloadError;

/// A `rows x cols` logical arrangement of processes, row-major: process
/// `r * cols + c` sits at `(r, c)`.
///
/// This is the *logical* layout the algorithms communicate over; the
/// physical placement onto switches is what synthesis decides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid {
    rows: usize,
    cols: usize,
}

impl Grid {
    /// A grid with the given shape.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::TooFewProcs`] if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Result<Self, WorkloadError> {
        if rows == 0 || cols == 0 {
            return Err(WorkloadError::TooFewProcs {
                n_procs: rows * cols,
                minimum: 1,
            });
        }
        Ok(Grid { rows, cols })
    }

    /// The square grid for a perfect-square process count.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::NotPerfectSquare`] otherwise.
    pub fn square(n_procs: usize) -> Result<Self, WorkloadError> {
        let side = (n_procs as f64).sqrt().round() as usize;
        if side * side != n_procs || n_procs == 0 {
            return Err(WorkloadError::NotPerfectSquare { n_procs });
        }
        Grid::new(side, side)
    }

    /// The near-square power-of-two grid NPB uses: `2^floor(k/2)` columns by
    /// `2^ceil(k/2)` rows for `n = 2^k`.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::NotPowerOfTwo`] if `n_procs` is not a power of two.
    pub fn power_of_two(n_procs: usize) -> Result<Self, WorkloadError> {
        if n_procs == 0 || !n_procs.is_power_of_two() {
            return Err(WorkloadError::NotPowerOfTwo { n_procs });
        }
        let k = n_procs.trailing_zeros() as usize;
        let cols = 1 << (k / 2);
        let rows = 1 << (k - k / 2);
        Grid::new(rows, cols)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total process count.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// Whether the grid is empty (never true for a constructed grid).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the grid is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// The process at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the grid.
    pub fn at(&self, row: usize, col: usize) -> ProcId {
        assert!(
            row < self.rows && col < self.cols,
            "({row},{col}) outside grid"
        );
        ProcId(row * self.cols + col)
    }

    /// The `(row, col)` of a process.
    ///
    /// # Panics
    ///
    /// Panics if the process is outside the grid.
    pub fn coords(&self, proc: ProcId) -> (usize, usize) {
        assert!(proc.index() < self.len(), "{proc} outside grid");
        (proc.index() / self.cols, proc.index() % self.cols)
    }

    /// Iterates over all processes in row-major order.
    pub fn procs(&self) -> impl Iterator<Item = ProcId> {
        (0..self.len()).map(ProcId)
    }
}

impl fmt::Display for Grid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{} grid", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_grids() {
        let g = Grid::square(9).unwrap();
        assert_eq!((g.rows(), g.cols()), (3, 3));
        assert!(g.is_square());
        assert!(Grid::square(8).is_err());
        assert!(Grid::square(0).is_err());
    }

    #[test]
    fn power_of_two_grids() {
        let g8 = Grid::power_of_two(8).unwrap();
        assert_eq!((g8.rows(), g8.cols()), (4, 2));
        let g16 = Grid::power_of_two(16).unwrap();
        assert_eq!((g16.rows(), g16.cols()), (4, 4));
        assert!(Grid::power_of_two(12).is_err());
        assert!(Grid::power_of_two(0).is_err());
    }

    #[test]
    fn coordinate_round_trip() {
        let g = Grid::new(3, 5).unwrap();
        for p in g.procs() {
            let (r, c) = g.coords(p);
            assert_eq!(g.at(r, c), p);
        }
        assert_eq!(g.len(), 15);
        assert!(!g.is_empty());
    }

    #[test]
    #[should_panic(expected = "outside grid")]
    fn at_bounds_checked() {
        let g = Grid::new(2, 2).unwrap();
        let _ = g.at(2, 0);
    }

    #[test]
    fn zero_dimension_rejected() {
        assert!(Grid::new(0, 3).is_err());
        assert!(Grid::new(3, 0).is_err());
    }
}
