//! The benchmark suite enumeration and dispatch.

use std::fmt;

use nocsyn_model::PhaseSchedule;

use crate::btsp::{self, Variant};
use crate::{cg, fft, mg, WorkloadError, WorkloadParams};

/// The five NAS benchmarks of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Benchmark {
    /// Block Tridiagonal solver (square process counts).
    Bt,
    /// Conjugate Gradient (power-of-two process counts).
    Cg,
    /// 3-D Fast Fourier Transform (power-of-two process counts).
    Fft,
    /// Multi-Grid solver (power-of-two process counts).
    Mg,
    /// Scalar Pentadiagonal solver (square process counts).
    Sp,
}

impl Benchmark {
    /// All five benchmarks in the paper's order.
    pub const ALL: [Benchmark; 5] = [
        Benchmark::Bt,
        Benchmark::Cg,
        Benchmark::Fft,
        Benchmark::Mg,
        Benchmark::Sp,
    ];

    /// Generates the benchmark's phase schedule for `n_procs` processes.
    ///
    /// # Errors
    ///
    /// [`WorkloadError`] if `n_procs` does not satisfy the benchmark's
    /// shape requirement (power of two for CG/FFT/MG, perfect square for
    /// BT/SP) or is too small.
    pub fn schedule(
        self,
        n_procs: usize,
        params: &WorkloadParams,
    ) -> Result<PhaseSchedule, WorkloadError> {
        match self {
            Benchmark::Bt => btsp::schedule(Variant::Bt, n_procs, params),
            Benchmark::Sp => btsp::schedule(Variant::Sp, n_procs, params),
            Benchmark::Cg => cg::schedule(n_procs, params),
            Benchmark::Fft => fft::schedule(n_procs, params),
            Benchmark::Mg => mg::schedule(n_procs, params),
        }
    }

    /// The process count the paper uses for this benchmark in its small
    /// (8/9-node) and large (16-node) configurations: "8-node and 16-node
    /// configurations, except for the BT and SP benchmark on which a
    /// 9-node configuration is used since these benchmarks require a
    /// number of processors equal to a perfect square."
    pub fn paper_procs(self, large: bool) -> usize {
        if large {
            16
        } else {
            match self {
                Benchmark::Bt | Benchmark::Sp => 9,
                _ => 8,
            }
        }
    }

    /// Short uppercase name as the paper prints it.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Bt => "BT",
            Benchmark::Cg => "CG",
            Benchmark::Fft => "FFT",
            Benchmark::Mg => "MG",
            Benchmark::Sp => "SP",
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The full evaluation suite at the paper's configuration: each benchmark
/// with its paper process count and default parameters.
///
/// # Panics
///
/// Never: the paper process counts are valid for every benchmark by
/// construction.
pub fn suite(large: bool) -> Vec<(Benchmark, usize, PhaseSchedule)> {
    Benchmark::ALL
        .into_iter()
        .map(|b| {
            let n = b.paper_procs(large);
            let sched = b
                .schedule(n, &WorkloadParams::paper_default(b))
                .expect("paper process counts are valid");
            (b, n, sched)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_proc_counts() {
        assert_eq!(Benchmark::Bt.paper_procs(false), 9);
        assert_eq!(Benchmark::Sp.paper_procs(false), 9);
        assert_eq!(Benchmark::Cg.paper_procs(false), 8);
        for b in Benchmark::ALL {
            assert_eq!(b.paper_procs(true), 16);
        }
    }

    #[test]
    fn suite_builds_both_configurations() {
        for large in [false, true] {
            let s = suite(large);
            assert_eq!(s.len(), 5);
            for (b, n, sched) in s {
                assert_eq!(sched.n_procs(), n);
                assert!(!sched.is_empty(), "{b} schedule empty");
            }
        }
    }

    #[test]
    fn shape_requirements_enforced() {
        let p = WorkloadParams::default();
        assert!(Benchmark::Bt.schedule(8, &p).is_err());
        assert!(Benchmark::Cg.schedule(9, &p).is_err());
        assert!(Benchmark::Fft.schedule(10, &p).is_err());
        assert!(Benchmark::Mg.schedule(6, &p).is_err());
        assert!(Benchmark::Sp.schedule(10, &p).is_err());
    }

    #[test]
    fn names_and_display() {
        assert_eq!(Benchmark::Fft.to_string(), "FFT");
        assert_eq!(
            Benchmark::ALL.map(|b| b.name()),
            ["BT", "CG", "FFT", "MG", "SP"]
        );
    }

    #[test]
    fn bt_sp_complexity_exceeds_cg() {
        // Section 4.1: "The BT and SP benchmarks have more complicated
        // communication patterns which leads to a higher requirement on
        // network resources" — at 16 nodes their flow sets dominate CG's.
        let p = WorkloadParams::default();
        let cg_flows = Benchmark::Cg.schedule(16, &p).unwrap().all_flows().len();
        let bt_flows = Benchmark::Bt.schedule(16, &p).unwrap().all_flows().len();
        let sp_flows = Benchmark::Sp.schedule(16, &p).unwrap().all_flows().len();
        assert!(bt_flows > cg_flows);
        assert!(sp_flows > cg_flows);
    }
}
