//! The MG (Multi-Grid) pattern.
//!
//! The paper: "MG consists mainly of reduction to all nodes and broadcast
//! communication of short messages." Both collectives are expressed as
//! binomial trees, the canonical message-passing implementation: a
//! `log2(n)`-round reduction into process 0 followed by a `log2(n)`-round
//! broadcast back out. Every round is a partial permutation (half or fewer
//! of the processes communicate), so MG's cliques are small even though
//! its phase count is high — which is why the paper finds MG synthesizes
//! into a very lean network yet sees little performance change (its short
//! messages make it latency- rather than contention-bound).

use nocsyn_model::{Flow, Phase, PhaseSchedule};

use crate::{WorkloadError, WorkloadParams};

pub(crate) fn schedule(
    n_procs: usize,
    params: &WorkloadParams,
) -> Result<PhaseSchedule, WorkloadError> {
    if n_procs == 0 || !n_procs.is_power_of_two() {
        return Err(WorkloadError::NotPowerOfTwo { n_procs });
    }
    if n_procs < 2 {
        return Err(WorkloadError::TooFewProcs {
            n_procs,
            minimum: 2,
        });
    }
    let mut sched = PhaseSchedule::new(n_procs);
    let phases = iteration_phases(n_procs, params);
    for _ in 0..params.iterations.max(1) {
        for phase in &phases {
            sched
                .push(phase.clone())
                .expect("generated flows are in range");
        }
    }
    Ok(sched)
}

fn iteration_phases(n: usize, params: &WorkloadParams) -> Vec<Phase> {
    let rounds = n.trailing_zeros() as usize;
    let mut phases = Vec::new();

    // Binomial reduction into process 0: at round k, every process whose
    // low k bits are zero and whose bit k is set sends to the peer with
    // that bit cleared.
    for k in 0..rounds {
        let mut phase = Phase::new()
            .with_bytes(params.bytes)
            .with_compute(params.compute_ticks);
        let stride = 1usize << (k + 1);
        let half = 1usize << k;
        let mut p = half;
        while p < n {
            phase
                .add(Flow::from_indices(p, p - half))
                .expect("binomial reduce rounds are partial permutations");
            p += stride;
        }
        phases.push(phase);
    }

    // Binomial broadcast from process 0: at round k, every process below
    // 2^k forwards to its peer 2^k above.
    for k in 0..rounds {
        let mut phase = Phase::new()
            .with_bytes(params.bytes)
            .with_compute(params.compute_ticks);
        let half = 1usize << k;
        for p in 0..half {
            phase
                .add(Flow::from_indices(p, p + half))
                .expect("binomial broadcast rounds are partial permutations");
        }
        phases.push(phase);
    }
    phases
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> WorkloadParams {
        WorkloadParams::default()
    }

    #[test]
    fn mg16_phase_structure() {
        let sched = schedule(16, &params()).unwrap();
        // 4 reduce rounds + 4 broadcast rounds.
        assert_eq!(sched.len(), 8);
        // Largest round involves half the processes.
        assert_eq!(sched.maximum_clique_set().max_clique_size(), 8);
    }

    #[test]
    fn reduce_converges_on_zero() {
        let sched = schedule(8, &params()).unwrap();
        // Final reduce round (k=2): only 4 -> 0.
        let phases: Vec<_> = sched.iter().collect();
        let last_reduce = phases[2];
        assert_eq!(last_reduce.len(), 1);
        assert!(last_reduce.clique().contains(Flow::from_indices(4, 0)));
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let sched = schedule(8, &params()).unwrap();
        // Union of broadcast-round destinations covers 1..8.
        let mut reached = [false; 8];
        reached[0] = true;
        for phase in sched.iter().skip(3) {
            for f in phase.iter() {
                assert!(reached[f.src.index()], "sender {f} not yet reached");
                reached[f.dst.index()] = true;
            }
        }
        assert!(reached.iter().all(|&r| r));
    }

    #[test]
    fn first_broadcast_round_is_single_flow() {
        let sched = schedule(8, &params()).unwrap();
        let phases: Vec<_> = sched.iter().collect();
        assert_eq!(phases[3].len(), 1);
        assert!(phases[3].clique().contains(Flow::from_indices(0, 1)));
    }

    #[test]
    fn invalid_counts_error() {
        assert!(schedule(9, &params()).is_err());
        assert!(schedule(0, &params()).is_err());
    }
}
