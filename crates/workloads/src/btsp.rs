//! The BT (Block Tridiagonal) and SP (Scalar Pentadiagonal) patterns.
//!
//! Both NPB codes run ADI-style line solves over a square process grid
//! (hence the paper's 9-process configuration) and "exhibit very similar
//! communication patterns which consist mostly of point-to-point
//! communications". Per iteration each code:
//!
//! * exchanges boundary faces with its four grid neighbors (`copy_faces`),
//!   one communication call per direction — four cyclic-shift permutation
//!   periods; and
//! * sweeps each dimension forward and backward with *pipelined*
//!   substitution: stage `j` of a sweep passes partial results from grid
//!   line `j` to `j+1`, so each stage is its own (small) contention period
//!   rather than one synchronized permutation.
//!
//! BT's diagonal cell staggering adds diagonal face exchanges; SP's
//! pentadiagonal solves send a second round along each axis. The resulting
//! patterns touch more distinct partners and have more periods than any
//! other benchmark in the suite — which is why the paper finds BT and SP
//! "have more complicated communication patterns which leads to a higher
//! requirement on network resources" (Section 4.1).

use nocsyn_model::{Flow, Phase, PhaseSchedule};

use crate::{Grid, WorkloadError, WorkloadParams};

/// Which of the two sibling benchmarks to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Variant {
    Bt,
    Sp,
}

pub(crate) fn schedule(
    variant: Variant,
    n_procs: usize,
    params: &WorkloadParams,
) -> Result<PhaseSchedule, WorkloadError> {
    let grid = Grid::square(n_procs)?;
    if n_procs < 4 {
        return Err(WorkloadError::TooFewProcs {
            n_procs,
            minimum: 4,
        });
    }
    let mut sched = PhaseSchedule::new(n_procs);
    let phases = iteration_phases(variant, &grid, params);
    for _ in 0..params.iterations.max(1) {
        for phase in &phases {
            sched
                .push(phase.clone())
                .expect("generated flows are in range");
        }
    }
    Ok(sched)
}

/// A cyclic-shift face exchange, staggered into diagonal waves.
///
/// BT and SP schedule their cells multi-partition style: cells on
/// different grid diagonals work (and therefore communicate) at different
/// times, so a face exchange is a *sequence* of small contention periods —
/// wave `d` carries the cells with `(r + c) % n == d` — rather than one
/// synchronized permutation.
fn shift_waves(grid: &Grid, dr: usize, dc: usize, params: &WorkloadParams) -> Vec<Phase> {
    let n = grid.rows(); // square
    (0..n)
        .map(|d| {
            let mut phase = Phase::new()
                .with_bytes(params.bytes)
                .with_compute(params.compute_ticks);
            for r in 0..grid.rows() {
                for c in 0..grid.cols() {
                    if (r + c) % n != d {
                        continue;
                    }
                    let dst = grid.at((r + dr) % grid.rows(), (c + dc) % grid.cols());
                    phase
                        .add(Flow::new(grid.at(r, c), dst))
                        .expect("one diagonal of a cyclic shift is a partial permutation");
                }
            }
            phase
        })
        .collect()
}

/// The wave-staggered stages of one directional sweep along the x axis.
///
/// Multi-partition scheduling staggers the line solves of different rows
/// across the grid diagonals: the cell at `(r, j)` passes its partial
/// result to `(r, j+1)` during wave `(r + j) % n`, so the flows live in a
/// wave belong to distinct rows *and* distinct column pairs. Sweeps do
/// not wrap.
fn x_sweep(grid: &Grid, forward: bool, params: &WorkloadParams) -> Vec<Phase> {
    let n = grid.rows(); // square
    (0..n)
        .filter_map(|d| {
            let mut phase = Phase::new()
                .with_bytes(params.bytes)
                .with_compute(params.compute_ticks);
            for r in 0..grid.rows() {
                for j in 0..grid.cols() - 1 {
                    if (r + j) % n != d {
                        continue;
                    }
                    let (from, to) = if forward {
                        (grid.at(r, j), grid.at(r, j + 1))
                    } else {
                        (
                            grid.at(r, grid.cols() - 1 - j),
                            grid.at(r, grid.cols() - 2 - j),
                        )
                    };
                    phase
                        .add(Flow::new(from, to))
                        .expect("waves pair distinct cells");
                }
            }
            (!phase.is_empty()).then_some(phase)
        })
        .collect()
}

/// The wave-staggered stages of one directional sweep along the y axis.
fn y_sweep(grid: &Grid, forward: bool, params: &WorkloadParams) -> Vec<Phase> {
    let n = grid.rows(); // square
    (0..n)
        .filter_map(|d| {
            let mut phase = Phase::new()
                .with_bytes(params.bytes)
                .with_compute(params.compute_ticks);
            for c in 0..grid.cols() {
                for j in 0..grid.rows() - 1 {
                    if (j + c) % n != d {
                        continue;
                    }
                    let (from, to) = if forward {
                        (grid.at(j, c), grid.at(j + 1, c))
                    } else {
                        (
                            grid.at(grid.rows() - 1 - j, c),
                            grid.at(grid.rows() - 2 - j, c),
                        )
                    };
                    phase
                        .add(Flow::new(from, to))
                        .expect("waves pair distinct cells");
                }
            }
            (!phase.is_empty()).then_some(phase)
        })
        .collect()
}

fn iteration_phases(variant: Variant, grid: &Grid, params: &WorkloadParams) -> Vec<Phase> {
    let n = grid.rows(); // square
    let mut phases = Vec::new();
    phases.extend(shift_waves(grid, 0, 1, params)); // copy_faces east
    phases.extend(shift_waves(grid, 0, n - 1, params)); // copy_faces west
    phases.extend(shift_waves(grid, 1, 0, params)); // copy_faces south
    phases.extend(shift_waves(grid, n - 1, 0, params)); // copy_faces north
                                                        // ADI sweeps: forward and backward in both dimensions, pipelined.
    phases.extend(x_sweep(grid, true, params));
    phases.extend(x_sweep(grid, false, params));
    phases.extend(y_sweep(grid, true, params));
    phases.extend(y_sweep(grid, false, params));
    match variant {
        Variant::Bt => {
            // BT's diagonally-staggered cells exchange along diagonals too.
            phases.extend(shift_waves(grid, 1, 1, params));
            phases.extend(shift_waves(grid, n - 1, n - 1, params));
        }
        Variant::Sp => {
            // SP's pentadiagonal solves pass a second value along each
            // axis: one extra forward sweep round per dimension.
            phases.extend(x_sweep(grid, true, params));
            phases.extend(y_sweep(grid, true, params));
        }
    }
    phases
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> WorkloadParams {
        WorkloadParams::default()
    }

    #[test]
    fn bt9_phase_structure() {
        let sched = schedule(Variant::Bt, 9, &params()).unwrap();
        // 6 staggered exchanges x 3 waves + 4 sweeps x 3 waves.
        assert_eq!(sched.len(), 6 * 3 + 4 * 3);
        // Every phase is a small partial permutation: one diagonal of an
        // exchange (3 cells) or one sweep wave (2 cells on a 3x3 grid).
        assert!(sched.iter().all(|p| p.len() == 2 || p.len() == 3));
    }

    #[test]
    fn sp_has_extra_sweep_rounds() {
        let sched = schedule(Variant::Sp, 9, &params()).unwrap();
        // 4 faces x 3 waves + 4 sweeps x 3 waves + 2 extra sweeps x 3.
        assert_eq!(sched.len(), 30);
        // Extra rounds repeat existing stages, so cliques dedupe.
        assert!(sched.maximum_clique_set().len() < sched.len());
    }

    #[test]
    fn bt_touches_more_partners_than_sp() {
        let bt = schedule(Variant::Bt, 16, &params()).unwrap();
        let sp = schedule(Variant::Sp, 16, &params()).unwrap();
        assert!(bt.all_flows().len() > sp.all_flows().len());
    }

    #[test]
    fn sweeps_are_pipelined_not_synchronized() {
        let sched = schedule(Variant::Bt, 9, &params()).unwrap();
        // Wave 0 of the forward x-sweep pairs cells (0,0)->(0,1) and
        // (2,1)->(2,2): flows (0,1) and (7,8). Crucially, no period ever
        // contains the full synchronized stage {(0,1),(3,4),(6,7)}.
        let k = sched.clique_set();
        let wave = k.iter().any(|c| {
            c.len() == 2
                && c.contains(Flow::from_indices(0, 1))
                && c.contains(Flow::from_indices(7, 8))
        });
        assert!(wave, "staggered x-sweep wave missing");
        let synchronized = k.iter().any(|c| {
            c.contains(Flow::from_indices(0, 1))
                && c.contains(Flow::from_indices(3, 4))
                && c.contains(Flow::from_indices(6, 7))
        });
        assert!(!synchronized, "sweep stage is synchronized across rows");
    }

    #[test]
    fn every_phase_is_displacement_coherent() {
        // Waves and sweep stages each carry a single grid displacement:
        // all flows of a phase move by the same (dr, dc) modulo the grid.
        let grid = Grid::square(9).unwrap();
        for variant in [Variant::Bt, Variant::Sp] {
            let sched = schedule(variant, 9, &params()).unwrap();
            for phase in sched.iter() {
                let displacements: std::collections::BTreeSet<(usize, usize)> = phase
                    .iter()
                    .map(|f| {
                        let (sr, sc) = grid.coords(f.src);
                        let (dr, dc) = grid.coords(f.dst);
                        (((dr + 3) - sr) % 3, ((dc + 3) - sc) % 3)
                    })
                    .collect();
                assert_eq!(displacements.len(), 1, "incoherent phase: {phase}");
            }
        }
    }

    #[test]
    fn non_square_counts_error() {
        assert!(schedule(Variant::Bt, 8, &params()).is_err());
        assert!(schedule(Variant::Sp, 2, &params()).is_err());
        assert!(matches!(
            schedule(Variant::Bt, 1, &params()),
            Err(WorkloadError::TooFewProcs { .. })
        ));
    }
}
