//! Synthetic NAS-style communication workloads.
//!
//! The paper (Section 4) evaluates its methodology on five NAS Parallel
//! Benchmarks — BT, CG, FFT, MG and SP — whose execution traces were
//! collected with MPI profiling on a PC cluster. Those traces are not
//! available; this crate substitutes **analytic generators** that emit the
//! *communication structure* the paper describes for each benchmark (see
//! DESIGN.md §2 for the substitution argument):
//!
//! * [`Benchmark::Cg`] — reduction within processor-grid rows (recursive
//!   doubling rounds) plus a matrix-transpose exchange. The 16-process
//!   instance reproduces the paper's Figure 1 pattern exactly
//!   ([`figure1`]).
//! * [`Benchmark::Bt`] / [`Benchmark::Sp`] — multi-phase point-to-point
//!   sweeps over a square processor grid (cyclic row and column shifts in
//!   all four directions), the most complex patterns of the suite.
//! * [`Benchmark::Fft`] — all-to-all within rows then within columns of a
//!   2-D processor grid, decomposed into cyclic-rotation rounds.
//! * [`Benchmark::Mg`] — binomial-tree reduction to process 0 followed by a
//!   binomial broadcast, with short messages.
//!
//! Every generator returns a [`PhaseSchedule`] (one contention period per
//! communication round, per the paper's phase-parallel extraction), which
//! lowers to timed [`Trace`]s for simulation via
//! [`PhaseSchedule::to_trace`] or a skewed
//! [`SkewModel`](nocsyn_model::SkewModel).
//!
//! [`Trace`]: nocsyn_model::Trace
//! [`PhaseSchedule`]: nocsyn_model::PhaseSchedule
//! [`PhaseSchedule::to_trace`]: nocsyn_model::PhaseSchedule::to_trace
//!
//! # Example
//!
//! ```
//! use nocsyn_workloads::{Benchmark, WorkloadParams};
//!
//! # fn main() -> Result<(), nocsyn_workloads::WorkloadError> {
//! let sched = Benchmark::Cg.schedule(16, &WorkloadParams::paper_default(Benchmark::Cg))?;
//! assert_eq!(sched.n_procs(), 16);
//! // CG's main loop: 2 reduction rounds + 1 transpose per iteration.
//! assert!(sched.maximum_clique_set().len() >= 3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod benchmark;
mod btsp;
mod cg;
mod error;
pub mod extra;
mod fft;
pub mod figure1;
mod grid;
mod mg;
mod params;
mod synthetic;
pub mod traffic;

pub use benchmark::{suite, Benchmark};
pub use error::WorkloadError;
pub use extra::{is_schedule, lu_schedule};
pub use grid::Grid;
pub use params::WorkloadParams;
pub use synthetic::{clustered_permutation_schedule, random_permutation_schedule};
pub use traffic::{open_loop_traffic, TrafficPattern};
