//! Workloads beyond the paper's five: IS and LU from the same NPB suite.
//!
//! The paper evaluates BT, CG, FFT, MG and SP; IS (Integer Sort) and LU
//! (Lower-Upper Gauss-Seidel) are the two remaining well-behaved NPB
//! codes and exercise communication shapes the original five do not — a
//! *global* all-to-all over every process (IS) and a strictly
//! nearest-neighbor 2-D wavefront (LU). They are offered for users
//! synthesizing networks for broader workloads; no paper figure depends
//! on them.

use nocsyn_model::{Flow, Phase, PhaseSchedule};

use crate::{Grid, WorkloadError, WorkloadParams};

/// IS (Integer Sort): bucket redistribution as a staggered, serialized
/// all-to-all over *all* processes, preceded by a short allreduce for the
/// bucket histograms (binomial reduce + broadcast over everyone).
///
/// # Errors
///
/// [`WorkloadError::NotPowerOfTwo`] for non-power-of-two counts,
/// [`WorkloadError::TooFewProcs`] below 2.
pub fn is_schedule(
    n_procs: usize,
    params: &WorkloadParams,
) -> Result<PhaseSchedule, WorkloadError> {
    if n_procs == 0 || !n_procs.is_power_of_two() {
        return Err(WorkloadError::NotPowerOfTwo { n_procs });
    }
    if n_procs < 2 {
        return Err(WorkloadError::TooFewProcs {
            n_procs,
            minimum: 2,
        });
    }
    let mut sched = PhaseSchedule::new(n_procs);
    let rounds = n_procs.trailing_zeros() as usize;

    let mut iteration: Vec<Phase> = Vec::new();
    // Histogram allreduce: binomial reduce into 0, broadcast back out.
    // Short messages, like MG.
    for k in 0..rounds {
        let mut phase = Phase::new()
            .with_bytes(64)
            .with_compute(params.compute_ticks / 4);
        let stride = 1usize << (k + 1);
        let half = 1usize << k;
        let mut p = half;
        while p < n_procs {
            phase
                .add(Flow::from_indices(p, p - half))
                .expect("binomial rounds are partial permutations");
            p += stride;
        }
        iteration.push(phase);
    }
    for k in (0..rounds).rev() {
        let mut phase = Phase::new()
            .with_bytes(64)
            .with_compute(params.compute_ticks / 4);
        let half = 1usize << k;
        for p in 0..half {
            phase
                .add(Flow::from_indices(p, p + half))
                .expect("binomial rounds are partial permutations");
        }
        iteration.push(phase);
    }
    // Key redistribution: XOR pairwise exchange rounds over everyone —
    // each round a full permutation of large payloads.
    for s in 1..n_procs {
        let mut phase = Phase::new()
            .with_bytes(params.bytes)
            .with_compute(params.compute_ticks);
        for p in 0..n_procs {
            phase
                .add(Flow::from_indices(p, p ^ s))
                .expect("xor pairing is a permutation");
        }
        iteration.push(phase);
    }

    for _ in 0..params.iterations.max(1) {
        for phase in &iteration {
            sched
                .push(phase.clone())
                .expect("generated flows are in range");
        }
    }
    Ok(sched)
}

/// LU (Lower-Upper Gauss-Seidel): a 2-D wavefront over the process grid.
/// The lower-triangular sweep passes data east and south, one diagonal at
/// a time; the upper sweep mirrors it west and north. Strictly
/// nearest-neighbor, very sparse — the friendliest possible pattern for
/// the synthesis methodology.
///
/// # Errors
///
/// [`WorkloadError::NotPerfectSquare`] for non-square counts,
/// [`WorkloadError::TooFewProcs`] below 4.
pub fn lu_schedule(
    n_procs: usize,
    params: &WorkloadParams,
) -> Result<PhaseSchedule, WorkloadError> {
    let grid = Grid::square(n_procs)?;
    if n_procs < 4 {
        return Err(WorkloadError::TooFewProcs {
            n_procs,
            minimum: 4,
        });
    }
    let n = grid.rows();
    let mut sched = PhaseSchedule::new(n_procs);

    let mut iteration: Vec<Phase> = Vec::new();
    // Lower sweep: diagonals d = 0 .. 2n-3; cell (r, c) on diagonal r+c
    // sends east and south (in two separate calls, as the code does).
    for d in 0..(2 * n - 2) {
        for (dr, dc) in [(0usize, 1usize), (1, 0)] {
            let mut phase = Phase::new()
                .with_bytes(params.bytes)
                .with_compute(params.compute_ticks);
            for r in 0..n {
                for c in 0..n {
                    if r + c != d || r + dr >= n || c + dc >= n {
                        continue;
                    }
                    phase
                        .add(Flow::new(grid.at(r, c), grid.at(r + dr, c + dc)))
                        .expect("one diagonal of a sweep is a partial permutation");
                }
            }
            if !phase.is_empty() {
                iteration.push(phase);
            }
        }
    }
    // Upper sweep: mirrored, anti-diagonal order, west and north.
    for d in (0..(2 * n - 2)).rev() {
        for (dr, dc) in [(0usize, 1usize), (1, 0)] {
            let mut phase = Phase::new()
                .with_bytes(params.bytes)
                .with_compute(params.compute_ticks);
            for r in 0..n {
                for c in 0..n {
                    if r + c != d || r < dr || c < dc {
                        continue;
                    }
                    phase
                        .add(Flow::new(grid.at(r, c), grid.at(r - dr, c - dc)))
                        .expect("one diagonal of a sweep is a partial permutation");
                }
            }
            if !phase.is_empty() {
                iteration.push(phase);
            }
        }
    }

    for _ in 0..params.iterations.max(1) {
        for phase in &iteration {
            sched
                .push(phase.clone())
                .expect("generated flows are in range");
        }
    }
    Ok(sched)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> WorkloadParams {
        WorkloadParams::default()
    }

    #[test]
    fn is16_structure() {
        let sched = is_schedule(16, &params()).unwrap();
        // 4 reduce + 4 broadcast + 15 exchange rounds.
        assert_eq!(sched.len(), 4 + 4 + 15);
        // Exchange rounds are full permutations.
        assert_eq!(sched.iter().filter(|p| p.len() == 16).count(), 15);
        // All-to-all coverage over all ordered pairs.
        assert_eq!(sched.all_flows().len(), (16 * 15));
    }

    #[test]
    fn is_rejects_bad_counts() {
        assert!(is_schedule(12, &params()).is_err());
        assert!(is_schedule(0, &params()).is_err());
        assert!(is_schedule(1, &params()).is_err());
    }

    #[test]
    fn lu9_is_nearest_neighbor_only() {
        let sched = lu_schedule(9, &params()).unwrap();
        let grid = Grid::square(9).unwrap();
        for flow in sched.all_flows() {
            let (r1, c1) = grid.coords(flow.src);
            let (r2, c2) = grid.coords(flow.dst);
            assert_eq!(
                r1.abs_diff(r2) + c1.abs_diff(c2),
                1,
                "non-neighbor flow {flow}"
            );
        }
    }

    #[test]
    fn lu_wavefront_phases_are_small() {
        let sched = lu_schedule(16, &params()).unwrap();
        // No phase exceeds the diagonal length.
        assert!(sched.iter().all(|p| p.len() <= 4));
        assert!(!sched.is_empty());
    }

    #[test]
    fn lu_rejects_bad_counts() {
        assert!(lu_schedule(8, &params()).is_err());
        assert!(lu_schedule(2, &params()).is_err());
    }

    #[test]
    fn lu_synthesizes_very_lean() {
        // LU's nearest-neighbor wavefront with tiny cliques should let
        // the methodology pack 3-4 procs per switch.
        use nocsyn_model::PhaseSchedule as _PS;
        let sched: _PS = lu_schedule(16, &params()).unwrap();
        assert!(sched.maximum_clique_set().max_clique_size() <= 4);
    }
}
