//! The paper's Figure 1: the CG communication pattern on 16 processes.
//!
//! Figure 1 shows the contention periods extracted from the CG benchmark
//! that drive the worked design example of Section 3.4 (Figures 2 and 5).
//! This module pins that exact pattern as a fixture — it equals one
//! iteration of [`Benchmark::Cg`](crate::Benchmark) at 16 processes —
//! together with the two candidate bisections ("Cut 1" and "Cut 2") the
//! paper analyzes.
//!
//! Process indices here are 0-based; the paper's figure is 1-based, so the
//! paper's communication `(2, 5)` is `(1, 4)` here.

use nocsyn_model::{Flow, PhaseSchedule, ProcId};

use crate::{Benchmark, WorkloadParams};

/// Number of processes in the Figure 1 pattern.
pub const N_PROCS: usize = 16;

/// The Figure 1 phase schedule: two row-reduction exchange periods
/// (distance 1, then 2, within rows of the 4x4 process grid) and the
/// transpose permutation of Contention Period 3.
pub fn schedule() -> PhaseSchedule {
    Benchmark::Cg
        .schedule(
            N_PROCS,
            &WorkloadParams::paper_default(Benchmark::Cg).with_iterations(1),
        )
        .expect("16 is a valid CG process count")
}

/// The transpose clique of Contention Period 3, exactly as the paper lists
/// it (converted to 0-based indices): `{(2,5), (5,2), (3,9), (9,3),
/// (4,13), (13,4), (7,10), (10,7), (8,14), (14,8), (12,15), (15,12)}`.
pub fn transpose_clique() -> Vec<Flow> {
    [
        (1, 4),
        (4, 1),
        (2, 8),
        (8, 2),
        (3, 12),
        (12, 3),
        (6, 9),
        (9, 6),
        (7, 13),
        (13, 7),
        (11, 14),
        (14, 11),
    ]
    .into_iter()
    .map(Flow::from)
    .collect()
}

/// Cut 1 of Figure 2: processes 1–8 (paper numbering) on one switch,
/// 9–16 on the other. Returns the two process sets, 0-based.
pub fn cut1() -> (Vec<ProcId>, Vec<ProcId>) {
    ((0..8).map(ProcId).collect(), (8..16).map(ProcId).collect())
}

/// Cut 2 of Figure 2: the improved bisection reached by moving process 9
/// (paper numbering) into the first set — processes 1–9 versus 10–16,
/// 0-based `{0..=8}` versus `{9..=15}`.
///
/// The paper reports Cut 1 needs **four** links while Cut 2, despite more
/// messages crossing it (ten rather than eight), needs only **three** —
/// the worked demonstration that message *count* across a cut does not
/// determine link count; concurrent-conflict structure does.
pub fn cut2() -> (Vec<ProcId>, Vec<ProcId>) {
    ((0..9).map(ProcId).collect(), (9..16).map(ProcId).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    use nocsyn_coloring::fast_color;

    fn crossing_sets(
        schedule: &PhaseSchedule,
        side_a: &[ProcId],
    ) -> (BTreeSet<Flow>, BTreeSet<Flow>) {
        let a: BTreeSet<ProcId> = side_a.iter().copied().collect();
        let mut fwd = BTreeSet::new();
        let mut bwd = BTreeSet::new();
        for f in schedule.all_flows() {
            match (a.contains(&f.src), a.contains(&f.dst)) {
                (true, false) => {
                    fwd.insert(f);
                }
                (false, true) => {
                    bwd.insert(f);
                }
                _ => {}
            }
        }
        (fwd, bwd)
    }

    #[test]
    fn transpose_clique_is_a_contention_period() {
        let sched = schedule();
        let k = sched.maximum_clique_set();
        let expected: BTreeSet<Flow> = transpose_clique().into_iter().collect();
        assert!(
            k.iter()
                .any(|c| c.iter().collect::<BTreeSet<_>>() == expected),
            "Figure 1's transpose period not found in the clique set"
        );
    }

    #[test]
    fn cut1_needs_four_links() {
        // Paper, Section 3.1: "Eight messages ... pass through the cut ...
        // the number of colors required to color the graph is four for
        // both directions. Therefore, four links are required."
        let sched = schedule();
        let (a, b) = cut1();
        assert_eq!(a.len() + b.len(), N_PROCS);
        let (fwd, bwd) = crossing_sets(&sched, &a);
        assert_eq!(fwd.len(), 4);
        assert_eq!(bwd.len(), 4);
        let k = sched.maximum_clique_set();
        assert_eq!(fast_color(&k, &fwd, &bwd), 4);
    }

    #[test]
    fn cut2_needs_three_links_despite_more_messages() {
        // Paper: "For Cut 2, ten messages pass through the intersection
        // ... the number of links required is only three."
        let sched = schedule();
        let (a, b) = cut2();
        assert_eq!(a.len() + b.len(), N_PROCS);
        let (fwd, bwd) = crossing_sets(&sched, &a);
        // The paper's five forward communications (1-based (9,10), (9,11),
        // (8,14), (4,13), (7,10)).
        for (s, d) in [(8, 9), (8, 10), (7, 13), (3, 12), (6, 9)] {
            assert!(fwd.contains(&Flow::from_indices(s, d)), "missing ({s},{d})");
        }
        let crossing_messages = fwd.len() + bwd.len();
        assert_eq!(crossing_messages, 10, "ten messages cross Cut 2");
        let k = sched.maximum_clique_set();
        let links = fast_color(&k, &fwd, &bwd);
        let (fwd1, bwd1) = crossing_sets(&sched, &cut1().0);
        assert!(
            crossing_messages > fwd1.len() + bwd1.len(),
            "Cut 2 must carry more messages than Cut 1"
        );
        assert_eq!(links, 3, "Cut 2 requires three links");
    }

    #[test]
    fn pattern_shape_matches_figure() {
        let sched = schedule();
        assert_eq!(sched.n_procs(), 16);
        assert_eq!(sched.len(), 3);
        let sizes: Vec<usize> = sched.maximum_clique_set().iter().map(|c| c.len()).collect();
        assert!(sizes.contains(&12));
        assert_eq!(sizes.iter().filter(|&&s| s == 16).count(), 2);
    }
}
