//! Synthetic open-loop traffic for stress testing: the classic NoC
//! evaluation patterns (uniform random, transpose, hotspot).
//!
//! The paper synthesizes for *known* patterns; these generators produce
//! the **unknown** traffic that regular topologies are built for, so the
//! `load_latency` experiment can show the other side of the trade-off: a
//! specialized network saturates earlier than a mesh once traffic stops
//! matching its application.

use nocsyn_model::{Message, ProcId, Trace};
use nocsyn_rng::Rng;

/// Destination selection for [`open_loop_traffic`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrafficPattern {
    /// Every message picks a destination uniformly at random.
    UniformRandom,
    /// Process `i` always sends to `(i + n/2) % n` (a fixed permutation
    /// far from nearest-neighbor).
    Complement,
    /// A fraction of messages target one hot process; the rest are
    /// uniform.
    Hotspot {
        /// The hot destination.
        hot: usize,
        /// Fraction of traffic aimed at it, in `[0, 1]`.
        fraction: f64,
    },
}

/// Generates an open-loop trace: each process injects messages as a
/// Bernoulli process with probability `injection_rate` per cycle slot
/// (slots of `message_bytes` duration), for `duration` cycles.
///
/// Message finish times are nominal (`start + bytes`); only the starts
/// matter when the trace is replayed through
/// [`run_trace`](../nocsyn_sim/fn.run_trace.html).
///
/// # Panics
///
/// Panics if `n_procs < 2`, `injection_rate` is outside `[0, 1]`, or a
/// hotspot pattern names an out-of-range process.
pub fn open_loop_traffic(
    n_procs: usize,
    pattern: TrafficPattern,
    injection_rate: f64,
    duration: u64,
    message_bytes: u32,
    seed: u64,
) -> Trace {
    assert!(n_procs >= 2, "need at least two processes");
    assert!(
        (0.0..=1.0).contains(&injection_rate),
        "injection rate is a probability"
    );
    if let TrafficPattern::Hotspot { hot, fraction } = pattern {
        assert!(hot < n_procs, "hotspot process out of range");
        assert!(
            (0.0..=1.0).contains(&fraction),
            "hotspot fraction is a probability"
        );
    }

    let mut rng = Rng::seed_from_u64(seed);
    let mut trace = Trace::new(n_procs);
    let slot = u64::from(message_bytes.max(1));
    let mut t = 0;
    while t < duration {
        for src in 0..n_procs {
            if !rng.gen_bool(injection_rate) {
                continue;
            }
            let dst = match pattern {
                TrafficPattern::UniformRandom => {
                    let mut d = rng.gen_range(0..n_procs - 1);
                    if d >= src {
                        d += 1;
                    }
                    d
                }
                TrafficPattern::Complement => (src + n_procs / 2) % n_procs,
                TrafficPattern::Hotspot { hot, fraction } => {
                    if src != hot && rng.gen_bool(fraction) {
                        hot
                    } else {
                        let mut d = rng.gen_range(0..n_procs - 1);
                        if d >= src {
                            d += 1;
                        }
                        d
                    }
                }
            };
            if dst == src {
                continue; // complement pattern with odd n can self-pair
            }
            trace
                .push(
                    Message::new(ProcId(src), ProcId(dst), t, t + slot)
                        .expect("src != dst by construction")
                        .with_bytes(message_bytes),
                )
                .expect("procs in range by construction");
        }
        t += slot;
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_traffic_is_deterministic_and_in_range() {
        let a = open_loop_traffic(8, TrafficPattern::UniformRandom, 0.5, 4_096, 128, 7);
        let b = open_loop_traffic(8, TrafficPattern::UniformRandom, 0.5, 4_096, 128, 7);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        for m in a.messages() {
            assert_ne!(m.src(), m.dst());
            assert!(m.src().index() < 8 && m.dst().index() < 8);
        }
    }

    #[test]
    fn rate_scales_message_count() {
        let low = open_loop_traffic(8, TrafficPattern::UniformRandom, 0.1, 8_192, 128, 1);
        let high = open_loop_traffic(8, TrafficPattern::UniformRandom, 0.8, 8_192, 128, 1);
        assert!(high.len() > 4 * low.len());
    }

    #[test]
    fn complement_is_a_fixed_permutation() {
        let t = open_loop_traffic(8, TrafficPattern::Complement, 1.0, 1_024, 128, 3);
        for m in t.messages() {
            assert_eq!(m.dst().index(), (m.src().index() + 4) % 8);
        }
    }

    #[test]
    fn hotspot_concentrates_traffic() {
        let t = open_loop_traffic(
            8,
            TrafficPattern::Hotspot {
                hot: 3,
                fraction: 0.7,
            },
            0.5,
            8_192,
            128,
            9,
        );
        let to_hot = t.messages().filter(|m| m.dst().index() == 3).count();
        assert!(
            to_hot as f64 > 0.5 * t.len() as f64,
            "{to_hot} of {} messages hit the hotspot",
            t.len()
        );
    }

    #[test]
    fn zero_rate_is_empty() {
        let t = open_loop_traffic(4, TrafficPattern::UniformRandom, 0.0, 1_000, 64, 0);
        assert!(t.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn tiny_systems_rejected() {
        let _ = open_loop_traffic(1, TrafficPattern::UniformRandom, 0.5, 100, 64, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn hotspot_bounds_checked() {
        let _ = open_loop_traffic(
            4,
            TrafficPattern::Hotspot {
                hot: 9,
                fraction: 0.5,
            },
            0.5,
            100,
            64,
            0,
        );
    }
}
