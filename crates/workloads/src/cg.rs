//! The CG (Conjugate Gradient) communication pattern.
//!
//! The paper: "The CG benchmark's communication behavior is dominated by
//! reduction and matrix transpose communication in the main loop." NPB CG
//! arranges `2^k` processes in a near-square grid; each iteration performs
//! recursive-doubling reduction exchanges within grid rows followed by a
//! transpose exchange. On 16 processes this reproduces the paper's Figure 1
//! pattern: two row-exchange periods (distance 1 and 2) and the transpose
//! permutation `{(2,5), (5,2), (3,9), (9,3), ...}`.

use nocsyn_model::{Phase, PhaseSchedule};

use crate::{Grid, WorkloadError, WorkloadParams};

pub(crate) fn schedule(
    n_procs: usize,
    params: &WorkloadParams,
) -> Result<PhaseSchedule, WorkloadError> {
    let grid = Grid::power_of_two(n_procs)?;
    if n_procs < 2 {
        return Err(WorkloadError::TooFewProcs {
            n_procs,
            minimum: 2,
        });
    }
    let mut sched = PhaseSchedule::new(n_procs);
    let iteration = iteration_phases(&grid, params);
    for _ in 0..params.iterations.max(1) {
        for phase in &iteration {
            sched
                .push(phase.clone())
                .expect("generated flows are in range");
        }
    }
    Ok(sched)
}

/// One CG main-loop iteration: row-reduction rounds, then the transpose.
fn iteration_phases(grid: &Grid, params: &WorkloadParams) -> Vec<Phase> {
    let mut phases = Vec::new();

    // Recursive-doubling sum reduction within each row: at round `s`,
    // every process exchanges with the row peer whose column differs in
    // bit `s`. Each round is a full permutation (an involution).
    let mut distance = 1;
    while distance < grid.cols() {
        let mut phase = Phase::new()
            .with_bytes(params.bytes)
            .with_compute(params.compute_ticks);
        for r in 0..grid.rows() {
            for c in 0..grid.cols() {
                let partner = grid.at(r, c ^ distance);
                phase
                    .add(nocsyn_model::Flow::new(grid.at(r, c), partner))
                    .expect("xor exchange is a permutation");
            }
        }
        phases.push(phase);
        distance <<= 1;
    }

    // Transpose exchange. On a square grid, (r, c) <-> (c, r); diagonal
    // processes do not communicate (a partial permutation — exactly the
    // clique of the paper's Contention Period 3). On NPB's non-square
    // grids the transpose partner is the process half the machine away,
    // which is the same involution NPB's `exch_proc` reduces to there.
    let mut transpose = Phase::new()
        .with_bytes(params.bytes)
        .with_compute(params.compute_ticks);
    if grid.is_square() {
        for r in 0..grid.rows() {
            for c in 0..grid.cols() {
                if r != c {
                    transpose
                        .add(nocsyn_model::Flow::new(grid.at(r, c), grid.at(c, r)))
                        .expect("transpose is a permutation");
                }
            }
        }
    } else {
        let n = grid.len();
        for p in 0..n {
            transpose
                .add(nocsyn_model::Flow::from_indices(p, (p + n / 2) % n))
                .expect("half-shift is a permutation");
        }
    }
    if !transpose.is_empty() {
        phases.push(transpose);
    }
    phases
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocsyn_model::Flow;

    fn params() -> WorkloadParams {
        WorkloadParams::default()
    }

    #[test]
    fn cg16_matches_figure1_structure() {
        let sched = schedule(16, &params()).unwrap();
        // One iteration: 2 row-reduction rounds (4 cols) + transpose.
        assert_eq!(sched.len(), 3);
        let k = sched.maximum_clique_set();
        assert_eq!(k.len(), 3);
        // The transpose period has 12 flows (16 minus 4 diagonal procs).
        assert!(k.iter().any(|c| c.len() == 12));
        // Row rounds have 16 flows each.
        assert_eq!(k.iter().filter(|c| c.len() == 16).count(), 2);
    }

    #[test]
    fn cg16_transpose_contains_paper_flows() {
        // The paper lists period 3 as {(2,5),(5,2),(3,9),(9,3),(4,13),
        // (13,4),(7,10),(10,7),(8,14),(14,8),(12,15),(15,12)} with
        // 1-indexed processes; 0-indexed: (1,4),(4,1),(2,8),(8,2),...
        let sched = schedule(16, &params()).unwrap();
        let k = sched.maximum_clique_set();
        let transpose = k.iter().find(|c| c.len() == 12).unwrap();
        for (s, d) in [
            (1, 4),
            (4, 1),
            (2, 8),
            (8, 2),
            (3, 12),
            (12, 3),
            (6, 9),
            (9, 6),
            (7, 13),
            (13, 7),
            (11, 14),
            (14, 11),
        ] {
            assert!(
                transpose.contains(Flow::from_indices(s, d)),
                "transpose missing ({s},{d})"
            );
        }
    }

    #[test]
    fn cg8_uses_nonsquare_grid() {
        let sched = schedule(8, &params()).unwrap();
        // 4x2 grid: one row-reduction round + half-shift transpose.
        assert_eq!(sched.len(), 2);
        assert!(sched.all_flows().contains(&Flow::from_indices(0, 4)));
    }

    #[test]
    fn iterations_repeat_without_changing_cliques() {
        let once = schedule(16, &params()).unwrap();
        let four = schedule(16, &params().with_iterations(4)).unwrap();
        assert_eq!(four.len(), 4 * once.len());
        assert_eq!(
            four.maximum_clique_set().len(),
            once.maximum_clique_set().len()
        );
    }

    #[test]
    fn invalid_counts_error() {
        assert!(schedule(9, &params()).is_err());
        assert!(schedule(0, &params()).is_err());
        assert!(schedule(1, &params()).is_err());
    }
}
