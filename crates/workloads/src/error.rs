//! Error type for workload generation.

use std::error::Error;
use std::fmt;

/// Errors produced while generating workload schedules.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// The benchmark requires a power-of-two process count.
    NotPowerOfTwo {
        /// Requested process count.
        n_procs: usize,
    },
    /// The benchmark requires a perfect-square process count.
    NotPerfectSquare {
        /// Requested process count.
        n_procs: usize,
    },
    /// The process count is too small for the benchmark to communicate.
    TooFewProcs {
        /// Requested process count.
        n_procs: usize,
        /// Smallest supported count.
        minimum: usize,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::NotPowerOfTwo { n_procs } => {
                write!(f, "{n_procs} processes is not a power of two")
            }
            WorkloadError::NotPerfectSquare { n_procs } => {
                write!(f, "{n_procs} processes is not a perfect square")
            }
            WorkloadError::TooFewProcs { n_procs, minimum } => {
                write!(f, "{n_procs} processes is below the minimum of {minimum}")
            }
        }
    }
}

impl Error for WorkloadError {}

impl WorkloadError {
    /// A short, stable, kebab-case identifier for the error class, never
    /// embedding input-derived values (same convention as
    /// `ModelError::fingerprint`).
    pub fn fingerprint(&self) -> &'static str {
        match self {
            WorkloadError::NotPowerOfTwo { .. } => "not-power-of-two",
            WorkloadError::NotPerfectSquare { .. } => "not-perfect-square",
            WorkloadError::TooFewProcs { .. } => "too-few-procs",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            WorkloadError::NotPowerOfTwo { n_procs: 9 }.to_string(),
            "9 processes is not a power of two"
        );
        assert_eq!(
            WorkloadError::NotPerfectSquare { n_procs: 8 }.to_string(),
            "8 processes is not a perfect square"
        );
        assert_eq!(
            WorkloadError::TooFewProcs {
                n_procs: 1,
                minimum: 4
            }
            .to_string(),
            "1 processes is below the minimum of 4"
        );
    }
}
