//! Workload parameterization.

use crate::Benchmark;

/// Parameters shared by every benchmark generator.
///
/// * `bytes` — per-message payload (the paper cites multi-KiB scientific
///   payloads; MG is noted for *short* messages).
/// * `compute_ticks` — computation gap inserted after each communication
///   phase, which sets the communication-to-computation ratio the paper's
///   Section 4.2 discusses.
/// * `iterations` — how many times the benchmark's main loop repeats.
///   Repetition does not change the clique set (phases dedupe) but scales
///   simulated execution time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadParams {
    /// Per-message payload in bytes.
    pub bytes: u32,
    /// Computation ticks after each phase.
    pub compute_ticks: u64,
    /// Main-loop iterations.
    pub iterations: usize,
}

impl WorkloadParams {
    /// Parameters mirroring the paper's qualitative setup for a benchmark:
    /// 4 KiB payloads for the point-to-point-heavy codes, 256 B for MG's
    /// short messages; computation gaps chosen so CG/BT/SP are
    /// communication-bound while FFT and MG have the lower
    /// communication-to-computation ratio the paper reports.
    pub fn paper_default(benchmark: Benchmark) -> Self {
        match benchmark {
            Benchmark::Cg => WorkloadParams {
                bytes: 4096,
                compute_ticks: 2_000,
                iterations: 4,
            },
            Benchmark::Bt | Benchmark::Sp => WorkloadParams {
                bytes: 4096,
                compute_ticks: 3_000,
                iterations: 4,
            },
            Benchmark::Fft => WorkloadParams {
                bytes: 4096,
                compute_ticks: 12_000,
                iterations: 4,
            },
            Benchmark::Mg => WorkloadParams {
                bytes: 256,
                compute_ticks: 4_000,
                iterations: 4,
            },
        }
    }

    /// Overrides the payload size.
    #[must_use]
    pub fn with_bytes(mut self, bytes: u32) -> Self {
        self.bytes = bytes;
        self
    }

    /// Overrides the computation gap.
    #[must_use]
    pub fn with_compute(mut self, ticks: u64) -> Self {
        self.compute_ticks = ticks;
        self
    }

    /// Overrides the iteration count.
    #[must_use]
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams {
            bytes: 4096,
            compute_ticks: 0,
            iterations: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mg_uses_short_messages() {
        assert!(
            WorkloadParams::paper_default(Benchmark::Mg).bytes
                < WorkloadParams::paper_default(Benchmark::Cg).bytes
        );
    }

    #[test]
    fn builder_overrides() {
        let p = WorkloadParams::default()
            .with_bytes(1)
            .with_compute(2)
            .with_iterations(3);
        assert_eq!((p.bytes, p.compute_ticks, p.iterations), (1, 2, 3));
    }
}
