//! The FFT (3-D fast Fourier transform) pattern.
//!
//! The paper: "The FFT benchmark is implemented by a 2-D blocking
//! algorithm, the communication of which is mainly all-to-all communication
//! within a row or column." Each all-to-all is realized as a *serialized,
//! staggered pairwise exchange* — the classic linear-exchange schedule: a
//! group of `g` processes performs its `g·(g-1)/2` pair exchanges one
//! call at a time, and parallel groups (the different rows, or the
//! different columns) start at offset positions in the pair order so that
//! no two groups hammer the same relative partner simultaneously. Each
//! call is one contention period carrying one bidirectional exchange per
//! group.

use nocsyn_model::{Flow, Phase, PhaseSchedule};

use crate::{Grid, WorkloadError, WorkloadParams};

pub(crate) fn schedule(
    n_procs: usize,
    params: &WorkloadParams,
) -> Result<PhaseSchedule, WorkloadError> {
    let grid = Grid::power_of_two(n_procs)?;
    if n_procs < 2 {
        return Err(WorkloadError::TooFewProcs {
            n_procs,
            minimum: 2,
        });
    }
    let mut sched = PhaseSchedule::new(n_procs);
    let phases = iteration_phases(&grid, params);
    for _ in 0..params.iterations.max(1) {
        for phase in &phases {
            sched
                .push(phase.clone())
                .expect("generated flows are in range");
        }
    }
    Ok(sched)
}

/// All unordered pairs of `0..g` in lexicographic order.
fn pairs(g: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(g * (g - 1) / 2);
    for a in 0..g {
        for b in a + 1..g {
            out.push((a, b));
        }
    }
    out
}

fn iteration_phases(grid: &Grid, params: &WorkloadParams) -> Vec<Phase> {
    let mut phases = Vec::new();

    // All-to-all within rows: call k has row r exchanging pair
    // `row_pairs[(k + r) % len]`.
    let row_pairs = pairs(grid.cols());
    for k in 0..row_pairs.len() {
        let mut phase = Phase::new()
            .with_bytes(params.bytes)
            .with_compute(params.compute_ticks);
        for r in 0..grid.rows() {
            let (a, b) = row_pairs[(k + r) % row_pairs.len()];
            phase
                .add(Flow::new(grid.at(r, a), grid.at(r, b)))
                .expect("rows exchange disjoint pairs");
            phase
                .add(Flow::new(grid.at(r, b), grid.at(r, a)))
                .expect("exchange is bidirectional");
        }
        phases.push(phase);
    }

    // All-to-all within columns, staggered per column.
    let col_pairs = pairs(grid.rows());
    for k in 0..col_pairs.len() {
        let mut phase = Phase::new()
            .with_bytes(params.bytes)
            .with_compute(params.compute_ticks);
        for c in 0..grid.cols() {
            let (a, b) = col_pairs[(k + c) % col_pairs.len()];
            phase
                .add(Flow::new(grid.at(a, c), grid.at(b, c)))
                .expect("columns exchange disjoint pairs");
            phase
                .add(Flow::new(grid.at(b, c), grid.at(a, c)))
                .expect("exchange is bidirectional");
        }
        phases.push(phase);
    }
    phases
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> WorkloadParams {
        WorkloadParams::default()
    }

    #[test]
    fn fft16_round_count() {
        // 4x4 grid: C(4,2) = 6 row calls + 6 column calls.
        let sched = schedule(16, &params()).unwrap();
        assert_eq!(sched.len(), 12);
        assert_eq!(sched.maximum_clique_set().len(), 12);
        // Each call: one exchange (2 flows) per row/column group of 4.
        assert!(sched.iter().all(|p| p.len() == 8));
    }

    #[test]
    fn fft8_round_count() {
        // 4x2 grid: 1 row call + 6 column calls.
        let sched = schedule(8, &params()).unwrap();
        assert_eq!(sched.len(), 7);
    }

    #[test]
    fn all_to_all_coverage_within_rows_and_columns() {
        let sched = schedule(16, &params()).unwrap();
        let grid = Grid::power_of_two(16).unwrap();
        let flows = sched.all_flows();
        // Every ordered pair within a row or column (src != dst) appears.
        for r in 0..4 {
            for c1 in 0..4 {
                for c2 in 0..4 {
                    if c1 != c2 {
                        assert!(flows.contains(&Flow::new(grid.at(r, c1), grid.at(r, c2))));
                        assert!(flows.contains(&Flow::new(grid.at(c1, r), grid.at(c2, r))));
                    }
                }
            }
        }
        // And nothing outside rows/columns does.
        assert!(!flows.contains(&Flow::from_indices(0, 5)));
    }

    #[test]
    fn stagger_spreads_groups_across_pair_orders() {
        // In any one call, different rows exchange different pairs (for
        // grids with at least 2 rows and enough pairs to stagger over).
        let sched = schedule(16, &params()).unwrap();
        let grid = Grid::power_of_two(16).unwrap();
        let first = sched.iter().next().unwrap();
        let mut row_pairs = std::collections::BTreeSet::new();
        for f in first.iter() {
            let (r, c1) = grid.coords(f.src);
            let (_, c2) = grid.coords(f.dst);
            row_pairs.insert((r, c1.min(c2), c1.max(c2)));
        }
        // 4 rows, each a distinct pair.
        let pairs_used: std::collections::BTreeSet<(usize, usize)> =
            row_pairs.iter().map(|&(_, a, b)| (a, b)).collect();
        assert_eq!(pairs_used.len(), 4);
    }

    #[test]
    fn complexity_grows_from_8_to_16_nodes() {
        // The paper notes FFT's relative resource needs increase with node
        // count because the collectives get more complex.
        let small = schedule(8, &params()).unwrap();
        let large = schedule(16, &params()).unwrap();
        assert!(large.maximum_clique_set().len() > small.maximum_clique_set().len());
        assert!(large.all_flows().len() > small.all_flows().len());
    }

    #[test]
    fn invalid_counts_error() {
        assert!(schedule(12, &params()).is_err());
        assert!(schedule(0, &params()).is_err());
    }
}
