//! Order-preserving parallel map over scoped threads.
//!
//! The engine's general fan-out primitive: the bench binaries use it to
//! compute per-benchmark rows concurrently while printing them in the
//! paper's order, independent of completion order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Applies `f` to every item on up to `workers` threads and returns the
/// results *in input order* — the output is invariant to the worker count
/// whenever `f` is a pure function of its item.
///
/// Items are claimed through a shared cursor (dynamic load balancing:
/// a slow item does not stall the others). With `workers <= 1`, or a
/// single item, this degenerates to a plain sequential map on the calling
/// thread — no threads are spawned.
///
/// # Panics
///
/// A panic inside `f` propagates to the caller once all other in-flight
/// items finish (scoped-thread join semantics).
pub fn par_map<T, U, F>(items: Vec<T>, workers: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    if workers <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    thread::scope(|scope| {
        for _ in 0..workers.min(n) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("slot lock never poisoned")
                    .take()
                    .expect("each slot is claimed exactly once");
                let out = f(item);
                *results[i].lock().expect("result lock never poisoned") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result lock never poisoned")
                .expect("every item was mapped")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_for_any_worker_count() {
        let items: Vec<usize> = (0..37).collect();
        let expect: Vec<usize> = items.iter().map(|x| x * 2).collect();
        for workers in [0, 1, 2, 4, 16, 64] {
            assert_eq!(
                par_map(items.clone(), workers, |x| x * 2),
                expect,
                "workers={workers}"
            );
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(par_map(Vec::<u8>::new(), 4, |x| x), Vec::<u8>::new());
        assert_eq!(par_map(vec![7], 4, |x| x + 1), vec![8]);
    }

    #[test]
    fn moves_non_copy_items_through() {
        let items = vec!["a".to_string(), "bb".to_string(), "ccc".to_string()];
        let lens = par_map(items, 2, |s| s.len());
        assert_eq!(lens, vec![1, 2, 3]);
    }
}
