//! Structured engine telemetry: the [`EngineEvent`] stream and the sinks
//! that consume it.
//!
//! Events describe the engine's execution, not its output: job lifecycle
//! (started / finished), every completed restart with its cost, and
//! deadline expiries. Sinks are pluggable through [`EventSink`]; the
//! engine calls them from its worker threads, so implementations must be
//! `Send + Sync` and serialize internally.
//!
//! Delivery order is *not* deterministic across runs (restarts finish in
//! whatever order the scheduler lands on); only the engine's reduced
//! results are. Consumers needing a stable view should key on the
//! `(job, attempt)` pair, which is unique.

use std::io::Write;
use std::sync::Mutex;

use nocsyn_model::json::JsonValue;

/// One telemetry event from the engine.
///
/// The JSON rendering (see [`EngineEvent::to_json`]) carries an `event`
/// discriminant field followed by the variant's payload, one object per
/// event — the schema documented in DESIGN.md §8.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineEvent {
    /// A job claimed its first work unit.
    JobStarted {
        /// Job name.
        job: String,
        /// Restart attempts the portfolio will run.
        attempts: usize,
        /// Deadline budget, if any.
        deadline_ms: Option<u64>,
    },
    /// One restart attempt finished and entered the reduction.
    RestartCompleted {
        /// Job name.
        job: String,
        /// Attempt index within the portfolio (0-based).
        attempt: usize,
        /// Derived seed the attempt ran with.
        seed: u64,
        /// Switch-to-switch links in the attempt's network.
        links: usize,
        /// Switches in the attempt's network.
        switches: usize,
        /// Whether the attempt met the degree constraints.
        constraints_met: bool,
        /// Partitioning moves the attempt evaluated (its search effort;
        /// divide by `elapsed_ms` for the attempt's moves/sec).
        moves: usize,
        /// Wall time of the attempt, in milliseconds.
        elapsed_ms: u64,
    },
    /// A job's deadline expired; remaining attempts are cancelled and the
    /// best-so-far result (if any) is reported as degraded output.
    DeadlineExceeded {
        /// Job name.
        job: String,
        /// Attempts that completed before expiry.
        completed_attempts: usize,
    },
    /// A job drained its last work unit and its outcome is final.
    JobFinished {
        /// Job name.
        job: String,
        /// Outcome status as a stable lowercase string
        /// (`completed` / `deadline_exceeded` / `failed`).
        status: String,
        /// Attempts that completed.
        completed_attempts: usize,
        /// Link count of the selected result, if one exists.
        links: Option<usize>,
        /// Switch count of the selected result, if one exists.
        switches: Option<usize>,
        /// Partitioning moves evaluated across every completed attempt —
        /// the job's total search effort, not the winner's alone.
        moves: usize,
        /// Wall time from the job's first claim to its last unit.
        elapsed_ms: u64,
    },
    /// A restart attempt panicked inside the synthesis call. The panic is
    /// caught at the attempt boundary: the worker survives, sibling jobs
    /// are untouched, and the job fails (or retries, under a
    /// `RetryPolicy`) with the payload preserved.
    AttemptPanicked {
        /// Job name.
        job: String,
        /// Attempt index within the portfolio (0-based).
        attempt: usize,
        /// Retry index within the attempt (0 = first execution).
        retry: usize,
        /// The panic payload, stringified.
        message: String,
    },
    /// The telemetry sink itself failed (I/O error on emit). This is the
    /// engine's last event: further telemetry is dropped (Null-sink
    /// fallback) rather than silently half-written. Results are
    /// unaffected. Carries no job name.
    SinkDegraded {
        /// The I/O error that killed the sink.
        error: String,
    },
    /// One request handled by the `nocsyn serve` daemon (emitted by
    /// `nocsyn-serve`, which reuses this telemetry stream so daemon and
    /// batch runs share one event pipeline). Carries no job name — serve
    /// requests are identified by their content fingerprint instead.
    ServeRequest {
        /// Protocol operation (`synth` / `stats` / `status`).
        op: String,
        /// How the request resolved: a cache tier (`miss` / `hit` /
        /// `disk`), `ok` for non-synthesis ops, or an error fingerprint.
        outcome: String,
        /// Content fingerprint of the job (empty for non-synthesis ops
        /// and rejected requests).
        fingerprint: String,
    },
}

impl EngineEvent {
    /// The `event` discriminant used in the JSON rendering.
    pub fn kind(&self) -> &'static str {
        match self {
            EngineEvent::JobStarted { .. } => "job_started",
            EngineEvent::RestartCompleted { .. } => "restart_completed",
            EngineEvent::DeadlineExceeded { .. } => "deadline_exceeded",
            EngineEvent::JobFinished { .. } => "job_finished",
            EngineEvent::AttemptPanicked { .. } => "attempt_panicked",
            EngineEvent::SinkDegraded { .. } => "sink_degraded",
            EngineEvent::ServeRequest { .. } => "serve_request",
        }
    }

    /// Name of the job the event belongs to (empty for engine-level
    /// events such as [`EngineEvent::SinkDegraded`]).
    pub fn job(&self) -> &str {
        match self {
            EngineEvent::JobStarted { job, .. }
            | EngineEvent::RestartCompleted { job, .. }
            | EngineEvent::DeadlineExceeded { job, .. }
            | EngineEvent::JobFinished { job, .. }
            | EngineEvent::AttemptPanicked { job, .. } => job,
            EngineEvent::SinkDegraded { .. } | EngineEvent::ServeRequest { .. } => "",
        }
    }

    /// Renders the event as one JSON object (`nocsyn_model::json`), with
    /// the `event` discriminant first.
    pub fn to_json(&self) -> JsonValue {
        let opt = |v: Option<usize>| v.map_or(JsonValue::Null, JsonValue::from);
        match self {
            EngineEvent::JobStarted {
                job,
                attempts,
                deadline_ms,
            } => JsonValue::object([
                ("event", JsonValue::from(self.kind())),
                ("job", JsonValue::from(job.as_str())),
                ("attempts", JsonValue::from(*attempts)),
                (
                    "deadline_ms",
                    deadline_ms.map_or(JsonValue::Null, JsonValue::from),
                ),
            ]),
            EngineEvent::RestartCompleted {
                job,
                attempt,
                seed,
                links,
                switches,
                constraints_met,
                moves,
                elapsed_ms,
            } => JsonValue::object([
                ("event", JsonValue::from(self.kind())),
                ("job", JsonValue::from(job.as_str())),
                ("attempt", JsonValue::from(*attempt)),
                ("seed", JsonValue::from(*seed)),
                ("links", JsonValue::from(*links)),
                ("switches", JsonValue::from(*switches)),
                ("constraints_met", JsonValue::from(*constraints_met)),
                ("moves", JsonValue::from(*moves)),
                ("elapsed_ms", JsonValue::from(*elapsed_ms)),
            ]),
            EngineEvent::DeadlineExceeded {
                job,
                completed_attempts,
            } => JsonValue::object([
                ("event", JsonValue::from(self.kind())),
                ("job", JsonValue::from(job.as_str())),
                ("completed_attempts", JsonValue::from(*completed_attempts)),
            ]),
            EngineEvent::JobFinished {
                job,
                status,
                completed_attempts,
                links,
                switches,
                moves,
                elapsed_ms,
            } => JsonValue::object([
                ("event", JsonValue::from(self.kind())),
                ("job", JsonValue::from(job.as_str())),
                ("status", JsonValue::from(status.as_str())),
                ("completed_attempts", JsonValue::from(*completed_attempts)),
                ("links", opt(*links)),
                ("switches", opt(*switches)),
                ("moves", JsonValue::from(*moves)),
                ("elapsed_ms", JsonValue::from(*elapsed_ms)),
            ]),
            EngineEvent::AttemptPanicked {
                job,
                attempt,
                retry,
                message,
            } => JsonValue::object([
                ("event", JsonValue::from(self.kind())),
                ("job", JsonValue::from(job.as_str())),
                ("attempt", JsonValue::from(*attempt)),
                ("retry", JsonValue::from(*retry)),
                ("message", JsonValue::from(message.as_str())),
            ]),
            EngineEvent::SinkDegraded { error } => JsonValue::object([
                ("event", JsonValue::from(self.kind())),
                ("error", JsonValue::from(error.as_str())),
            ]),
            EngineEvent::ServeRequest {
                op,
                outcome,
                fingerprint,
            } => JsonValue::object([
                ("event", JsonValue::from(self.kind())),
                ("op", JsonValue::from(op.as_str())),
                ("outcome", JsonValue::from(outcome.as_str())),
                ("fingerprint", JsonValue::from(fingerprint.as_str())),
            ]),
        }
    }
}

/// A consumer of engine telemetry. Called from worker threads, possibly
/// concurrently; implementations serialize internally.
pub trait EventSink: Send + Sync {
    /// Delivers one event. Must not panic. An `Err` tells the engine the
    /// sink is broken: the engine reports it once (a final
    /// [`EngineEvent::SinkDegraded`] is attempted, plus a stderr notice)
    /// and stops emitting for the rest of the run — telemetry degrades
    /// loudly instead of being dropped invisibly mid-stream. Results are
    /// never affected by sink failures.
    ///
    /// # Errors
    ///
    /// The I/O error that prevented delivery.
    fn emit(&self, event: &EngineEvent) -> std::io::Result<()>;
}

/// Discards every event (the engine default).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&self, _event: &EngineEvent) -> std::io::Result<()> {
        Ok(())
    }
}

/// Buffers events in memory, for tests and post-run inspection.
#[derive(Debug, Default)]
pub struct CollectSink {
    events: Mutex<Vec<EngineEvent>>,
}

impl CollectSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        CollectSink::default()
    }

    /// Snapshot of the events delivered so far, in arrival order.
    pub fn events(&self) -> Vec<EngineEvent> {
        self.events
            .lock()
            .expect("sink lock never poisoned")
            .clone()
    }
}

impl EventSink for CollectSink {
    fn emit(&self, event: &EngineEvent) -> std::io::Result<()> {
        self.events
            .lock()
            .expect("sink lock never poisoned")
            .push(event.clone());
        Ok(())
    }
}

/// Streams events as JSON Lines (one `EngineEvent::to_json` object per
/// line) to any writer — the engine's machine-readable telemetry format.
#[derive(Debug)]
pub struct JsonLinesSink<W: Write + Send> {
    out: Mutex<W>,
}

impl<W: Write + Send> JsonLinesSink<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> Self {
        JsonLinesSink {
            out: Mutex::new(out),
        }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.out.into_inner().expect("sink lock never poisoned")
    }
}

impl JsonLinesSink<std::io::Stderr> {
    /// A sink writing to standard error — what `nocsyn synth --events`
    /// uses so telemetry never mixes with the report on stdout.
    pub fn stderr() -> Self {
        JsonLinesSink::new(std::io::stderr())
    }
}

impl<W: Write + Send> EventSink for JsonLinesSink<W> {
    fn emit(&self, event: &EngineEvent) -> std::io::Result<()> {
        let mut out = self.out.lock().expect("sink lock never poisoned");
        // Write failures (closed pipe, full disk) surface to the engine,
        // which degrades the stream loudly instead of dropping lines
        // invisibly mid-run.
        writeln!(out, "{}", event.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EngineEvent {
        EngineEvent::RestartCompleted {
            job: "cg16".into(),
            attempt: 3,
            seed: 42,
            links: 28,
            switches: 9,
            constraints_met: true,
            moves: 1026,
            elapsed_ms: 12,
        }
    }

    #[test]
    fn json_schema_has_discriminant_first() {
        let json = sample().to_json().to_string();
        assert!(json.starts_with(r#"{"event":"restart_completed","job":"cg16""#));
        assert!(json.contains(r#""attempt":3"#));
        assert!(json.contains(r#""constraints_met":true"#));
        assert!(json.contains(r#""moves":1026"#));
    }

    #[test]
    fn finished_event_renders_missing_result_as_null() {
        let e = EngineEvent::JobFinished {
            job: "j".into(),
            status: "deadline_exceeded".into(),
            completed_attempts: 0,
            links: None,
            switches: None,
            moves: 0,
            elapsed_ms: 0,
        };
        let json = e.to_json().to_string();
        assert!(json.contains(r#""links":null"#));
        assert!(json.contains(r#""status":"deadline_exceeded""#));
    }

    #[test]
    fn kinds_and_job_names_are_stable() {
        let e = sample();
        assert_eq!(e.kind(), "restart_completed");
        assert_eq!(e.job(), "cg16");
        let s = EngineEvent::JobStarted {
            job: "a".into(),
            attempts: 8,
            deadline_ms: Some(100),
        };
        assert_eq!(s.kind(), "job_started");
        assert!(s.to_json().to_string().contains(r#""deadline_ms":100"#));
    }

    #[test]
    fn collect_sink_preserves_arrival_order() {
        let sink = CollectSink::new();
        sink.emit(&sample()).expect("collect sink never fails");
        sink.emit(&EngineEvent::DeadlineExceeded {
            job: "x".into(),
            completed_attempts: 1,
        })
        .expect("collect sink never fails");
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind(), "restart_completed");
        assert_eq!(events[1].kind(), "deadline_exceeded");
    }

    #[test]
    fn json_lines_sink_writes_one_line_per_event() {
        let sink = JsonLinesSink::new(Vec::new());
        sink.emit(&sample()).expect("vec write never fails");
        sink.emit(&sample()).expect("vec write never fails");
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn panic_and_degradation_events_render_stably() {
        let p = EngineEvent::AttemptPanicked {
            job: "cg16".into(),
            attempt: 2,
            retry: 1,
            message: "index out of bounds".into(),
        };
        assert_eq!(p.kind(), "attempt_panicked");
        assert_eq!(p.job(), "cg16");
        let json = p.to_json().to_string();
        assert!(json.starts_with(r#"{"event":"attempt_panicked","job":"cg16""#));
        assert!(json.contains(r#""retry":1"#));
        assert!(json.contains(r#""message":"index out of bounds""#));

        let d = EngineEvent::SinkDegraded {
            error: "broken pipe".into(),
        };
        assert_eq!(d.kind(), "sink_degraded");
        assert_eq!(d.job(), "");
        assert_eq!(
            d.to_json().to_string(),
            r#"{"event":"sink_degraded","error":"broken pipe"}"#
        );
    }

    #[test]
    fn serve_request_event_renders_stably() {
        let e = EngineEvent::ServeRequest {
            op: "synth".into(),
            outcome: "hit".into(),
            fingerprint: "abc123".into(),
        };
        assert_eq!(e.kind(), "serve_request");
        assert_eq!(e.job(), "");
        assert_eq!(
            e.to_json().to_string(),
            r#"{"event":"serve_request","op":"synth","outcome":"hit","fingerprint":"abc123"}"#
        );
    }

    /// A writer that always fails, to prove emit propagates I/O errors.
    struct BrokenWriter;

    impl Write for BrokenWriter {
        fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "broken pipe",
            ))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn json_lines_sink_propagates_write_failures() {
        let sink = JsonLinesSink::new(BrokenWriter);
        let err = sink.emit(&sample()).expect_err("broken writer must error");
        assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
    }
}
