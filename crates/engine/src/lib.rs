//! `nocsyn-engine` — a parallel, deterministic execution engine over the
//! synthesis methodology of `nocsyn-synth`.
//!
//! The paper's search is embarrassingly restartable: `synthesize` runs
//! `restarts()` independent annealing attempts with splitmix-derived
//! seeds and keeps the best. This crate farms that portfolio — and whole
//! batches of synthesis jobs — across threads while keeping the *chosen
//! result bit-identical for any worker count*:
//!
//! * every restart attempt is a pure function of
//!   `(pattern, config, attempt)` (see `nocsyn_synth::synthesize_attempt`),
//!   so it does not matter which thread runs it;
//! * the reduction is a stable argmin over
//!   `(portfolio_rank(result), attempt)` — rank ties break on the lowest
//!   attempt index, exactly reproducing the sequential loop's
//!   first-best-kept choice.
//!
//! [`Engine::run`] takes a batch of [`Job`]s and returns one
//! [`JobOutcome`] per job, in job order. Work is scheduled at restart
//! granularity: the engine materializes the bounded queue of
//! `(job, attempt)` units up front and its workers claim units through an
//! atomic cursor, so restarts of one job and jobs of one batch share the
//! same worker pool with dynamic load balancing.
//!
//! Every job carries a [`SynthesisRequest`], which may select the
//! **decomposed** mode for large patterns: the engine clusters the flow
//! graph (`nocsyn_synth::cluster_pattern`), schedules every cluster as an
//! independent sub-job on the same unit queue (named `{job}/c{i}` in
//! telemetry, under `nocsyn_synth::cluster_config` — reseeded, with one
//! port of degree headroom reserved for stitching), stitches the
//! per-cluster networks with dedicated exact-colored inter-cluster pipes
//! and re-verifies Theorem 1 on the stitched whole
//! (`nocsyn_synth::stitch`). The reduction is deterministic: a failed
//! cluster fails the job with the lowest-indexed cluster's error, and the
//! stitched result is a pure function of the per-cluster results.
//!
//! Jobs may carry a **deadline**. Expiry is detected when a worker claims
//! the next unit of the job (granularity: one restart attempt); remaining
//! attempts are cancelled through a shared flag, and the job degrades
//! gracefully to its best-so-far result with
//! [`JobStatus::DeadlineExceeded`] — never a panic. With a deadline of
//! zero, no attempt runs and the outcome carries no result.
//!
//! The engine is **panic-isolated**: every attempt runs under
//! `catch_unwind`, so a panic inside one attempt becomes a structured
//! [`EngineEvent::AttemptPanicked`] plus
//! [`JobStatus::Failed`]`(`[`JobError::Panicked`]`)` for that job only —
//! never a poisoned pool or a lost batch. A bounded [`RetryPolicy`] can
//! re-run a failed or panicked attempt with a deterministically reseeded
//! search (`nocsyn_synth::retry_seed`), keeping retried batches
//! reproducible run-to-run.
//!
//! Execution is observable through a structured [`EngineEvent`] stream
//! delivered to a pluggable [`EventSink`] ([`JsonLinesSink`] renders
//! JSON Lines via `nocsyn_model::json`). Sink I/O failures are surfaced,
//! not swallowed: the first failed emit degrades the stream loudly (a
//! stderr notice plus a best-effort [`EngineEvent::SinkDegraded`] marker)
//! and the engine falls back to discarding telemetry; results are never
//! affected. Telemetry order is not deterministic; results are.
//!
//! ```
//! use nocsyn_engine::Engine;
//! use nocsyn_model::{Phase, PhaseSchedule};
//! use nocsyn_synth::{synthesize, AppPattern, SynthesisConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut sched = PhaseSchedule::new(4);
//! sched.push(Phase::from_flows([(0usize, 1usize), (2, 3)])?)?;
//! let pattern = AppPattern::from_schedule(&sched);
//! let config = SynthesisConfig::new().with_seed(7).with_restarts(4);
//!
//! // Any worker count selects the same result as the sequential loop.
//! let outcome = Engine::new().with_workers(4).synthesize(&pattern, &config, None);
//! let parallel = outcome.result.expect("no deadline, so a result exists");
//! let sequential = synthesize(&pattern, &config)?;
//! assert_eq!(parallel.report, sequential.report);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod event;
mod par;

pub use event::{CollectSink, EngineEvent, EventSink, JsonLinesSink, NullSink};
pub use par::par_map;

use std::collections::BTreeSet;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

use nocsyn_synth::{
    auto_cluster_count, cluster_config, cluster_pattern, portfolio_rank, retry_seed, stitch,
    synthesize_retry, AppPattern, ClusterPlan, DecompositionSummary, SynthError, SynthesisConfig,
    SynthesisMode, SynthesisRequest, SynthesisResult,
};

/// Bounded retry policy for failed or panicked attempts.
///
/// Each retry re-runs the attempt with a deterministically reseeded
/// search (`nocsyn_synth::retry_seed`): retry 0 is the attempt's own
/// seed, and every further retry chains one `splitmix64` step off it, so
/// a retried batch is still bit-reproducible run-to-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RetryPolicy {
    /// Extra tries after the first (0 = fail fast, the default).
    pub max_retries: usize,
    /// Sleep between consecutive tries of one attempt.
    pub backoff: Duration,
}

impl RetryPolicy {
    /// A policy with `max_retries` extra tries and no backoff.
    pub fn retries(max_retries: usize) -> Self {
        RetryPolicy {
            max_retries,
            backoff: Duration::ZERO,
        }
    }

    /// Sets the sleep between consecutive tries of one attempt.
    #[must_use]
    pub fn with_backoff(mut self, backoff: Duration) -> Self {
        self.backoff = backoff;
        self
    }
}

/// One synthesis request in a batch: a named [`SynthesisRequest`] (the
/// pattern, config, mode and deadline all live on the request — every
/// caller assembles one the same way).
#[derive(Debug, Clone)]
pub struct Job {
    /// Name carried through outcomes and telemetry. Decomposed jobs fan
    /// out into per-cluster sub-jobs named `{name}/c{i}` in telemetry.
    pub name: String,
    /// What to synthesize: pattern, config (`restarts()` sets the
    /// portfolio size), flat/decomposed mode, optional per-job deadline.
    pub request: SynthesisRequest,
    /// Bounded retry policy for this job's attempts.
    pub retry: RetryPolicy,
    /// Attempts that panic on their first try — fault injection for tests
    /// and chaos drills. Retries of the same attempt run normally. For a
    /// decomposed job the indices apply to every cluster sub-job.
    injected_panics: BTreeSet<usize>,
}

impl Job {
    /// Creates a job with a fail-fast retry policy.
    pub fn new(name: impl Into<String>, request: SynthesisRequest) -> Self {
        Job {
            name: name.into(),
            request,
            retry: RetryPolicy::default(),
            injected_panics: BTreeSet::new(),
        }
    }

    /// Sets the retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Makes `attempt` panic on its first try; retries of the attempt run
    /// normally. A fault-injection hook proving one poisoned attempt
    /// cannot take down its batch — and, with a [`RetryPolicy`], that the
    /// job recovers.
    #[must_use]
    pub fn with_injected_panic(mut self, attempt: usize) -> Self {
        self.injected_panics.insert(attempt);
        self
    }
}

/// One schedulable sub-job: a flat job is exactly one of these, a
/// decomposed job fans out into one per cluster (with a derived
/// per-cluster seed).
#[derive(Debug)]
struct ExecJob {
    name: String,
    pattern: AppPattern,
    config: SynthesisConfig,
    deadline: Option<Duration>,
    retry: RetryPolicy,
    injected_panics: BTreeSet<usize>,
}

impl ExecJob {
    fn attempts(&self) -> usize {
        self.config.restarts().max(1)
    }
}

/// How a job's exec sub-jobs fold back into one [`JobOutcome`].
enum Reduction {
    /// The single exec outcome is the job outcome.
    Flat,
    /// Stitch the per-cluster results ([`stitch`]) and re-verify
    /// Theorem 1 globally.
    Decomposed(ClusterPlan),
    /// Clustering itself failed; no exec jobs were scheduled.
    PlanFailed(SynthError),
}

/// Why a job failed.
#[derive(Debug, Clone, PartialEq)]
pub enum JobError {
    /// Synthesis returned a structured error.
    Synth(SynthError),
    /// An attempt panicked; the engine caught it at the attempt boundary.
    Panicked {
        /// The panic payload rendered as text.
        message: String,
    },
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Synth(e) => write!(f, "{e}"),
            JobError::Panicked { message } => write!(f, "attempt panicked: {message}"),
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::Synth(e) => Some(e),
            JobError::Panicked { .. } => None,
        }
    }
}

impl From<SynthError> for JobError {
    fn from(e: SynthError) -> Self {
        JobError::Synth(e)
    }
}

impl JobError {
    /// A short, stable, kebab-case identifier for the error class, never
    /// embedding input-derived values (same convention as
    /// `ModelError::fingerprint`). Wrapped synthesis errors keep their own
    /// fingerprint.
    pub fn fingerprint(&self) -> &'static str {
        match self {
            JobError::Synth(e) => e.fingerprint(),
            JobError::Panicked { .. } => "panicked",
        }
    }
}

/// Terminal status of a job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobStatus {
    /// The full restart portfolio ran; the result is the deterministic
    /// argmin over all attempts.
    Completed,
    /// The deadline expired before the portfolio finished; the outcome
    /// carries the best result among the attempts that did complete
    /// (possibly none, for a zero deadline).
    DeadlineExceeded,
    /// The job failed — a structured synthesis error, or a panic caught
    /// at the attempt boundary — after its retry budget was exhausted;
    /// remaining attempts were cancelled. Batch neighbors are unaffected.
    Failed(JobError),
}

impl JobStatus {
    /// Stable lowercase label used in telemetry (`completed` /
    /// `deadline_exceeded` / `failed`).
    pub fn label(&self) -> &'static str {
        match self {
            JobStatus::Completed => "completed",
            JobStatus::DeadlineExceeded => "deadline_exceeded",
            JobStatus::Failed(_) => "failed",
        }
    }
}

/// Result of one job in a batch.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The job's name.
    pub name: String,
    /// Terminal status.
    pub status: JobStatus,
    /// Selected synthesis result. `Some` whenever at least one attempt
    /// completed — including under [`JobStatus::DeadlineExceeded`], where
    /// it is the degraded best-so-far. Always `None` under
    /// [`JobStatus::Failed`]: which sibling attempts happened to finish
    /// before the failure cancelled the job is a scheduling race, so a
    /// partial best would not be deterministic across worker counts.
    pub result: Option<SynthesisResult>,
    /// Restart attempts that ran to completion.
    pub attempts_completed: usize,
    /// Restart attempts the portfolio was scheduled to run.
    pub attempts_total: usize,
    /// Wall time from the job's first claimed unit to its last. For a
    /// decomposed job: the slowest cluster's wall time.
    pub elapsed: Duration,
    /// Cluster/stitch statistics when the job ran in decomposed mode and
    /// produced a stitched result; `None` for flat jobs.
    pub decomposition: Option<DecompositionSummary>,
}

/// Per-job shared state while the batch executes.
#[derive(Debug)]
struct JobState {
    attempts_total: usize,
    started: OnceLock<Instant>,
    cancelled: AtomicBool,
    deadline_hit: AtomicBool,
    remaining: AtomicUsize,
    completed: AtomicUsize,
    /// Partitioning moves evaluated across every completed attempt.
    moves: AtomicUsize,
    /// Best completed attempt: `(attempt index, result)`, minimal under
    /// `(portfolio_rank, attempt)`.
    best: Mutex<Option<(usize, SynthesisResult)>>,
    error: Mutex<Option<JobError>>,
    elapsed: Mutex<Duration>,
}

impl JobState {
    fn new(attempts_total: usize) -> Self {
        JobState {
            attempts_total,
            started: OnceLock::new(),
            cancelled: AtomicBool::new(false),
            deadline_hit: AtomicBool::new(false),
            remaining: AtomicUsize::new(attempts_total),
            completed: AtomicUsize::new(0),
            moves: AtomicUsize::new(0),
            best: Mutex::new(None),
            error: Mutex::new(None),
            elapsed: Mutex::new(Duration::ZERO),
        }
    }

    fn status(&self) -> JobStatus {
        let error = self.error.lock().expect("engine lock never poisoned");
        if let Some(e) = error.as_ref() {
            JobStatus::Failed(e.clone())
        } else if self.deadline_hit.load(Ordering::Acquire) {
            JobStatus::DeadlineExceeded
        } else {
            JobStatus::Completed
        }
    }

    fn into_outcome(self, name: String) -> JobOutcome {
        let status = self.status();
        let result = if matches!(status, JobStatus::Failed(_)) {
            None
        } else {
            self.best
                .into_inner()
                .expect("engine lock never poisoned")
                .map(|(_, r)| r)
        };
        JobOutcome {
            name,
            status,
            result,
            attempts_completed: self.completed.load(Ordering::Acquire),
            attempts_total: self.attempts_total,
            elapsed: *self.elapsed.lock().expect("engine lock never poisoned"),
            decomposition: None,
        }
    }
}

/// Folds a decomposed job's per-cluster outcomes into one: any failed
/// cluster fails the job (the lowest cluster index wins, so the reported
/// error is deterministic for any worker count); a cluster left without a
/// result (deadline before its first attempt completed) degrades the job
/// to [`JobStatus::DeadlineExceeded`] with no global result; otherwise
/// the cluster networks are stitched into one global network
/// ([`stitch`]) and Theorem 1 is re-verified on the stitched whole.
fn reduce_decomposed(job: &Job, plan: &ClusterPlan, parts: Vec<JobOutcome>) -> JobOutcome {
    let attempts_completed = parts.iter().map(|p| p.attempts_completed).sum();
    let attempts_total = parts.iter().map(|p| p.attempts_total).sum();
    let elapsed = parts
        .iter()
        .map(|p| p.elapsed)
        .max()
        .unwrap_or(Duration::ZERO);
    let finish = |status, result, decomposition| JobOutcome {
        name: job.name.clone(),
        status,
        result,
        attempts_completed,
        attempts_total,
        elapsed,
        decomposition,
    };
    if let Some(failed) = parts
        .iter()
        .find(|p| matches!(p.status, JobStatus::Failed(_)))
    {
        return finish(failed.status.clone(), None, None);
    }
    let deadline_hit = parts
        .iter()
        .any(|p| matches!(p.status, JobStatus::DeadlineExceeded));
    if parts.iter().any(|p| p.result.is_none()) {
        return finish(JobStatus::DeadlineExceeded, None, None);
    }
    let results: Vec<SynthesisResult> = parts
        .into_iter()
        .map(|p| p.result.expect("absence handled above"))
        .collect();
    match stitch(job.request.pattern(), plan, &results, job.request.config()) {
        Err(e) => finish(JobStatus::Failed(JobError::Synth(e)), None, None),
        Ok((result, summary)) => {
            let status = if deadline_hit {
                JobStatus::DeadlineExceeded
            } else {
                JobStatus::Completed
            };
            finish(status, Some(result), Some(summary))
        }
    }
}

/// Wraps the batch's sink for one run: the first emit failure degrades
/// the stream loudly — a stderr notice plus a best-effort
/// [`EngineEvent::SinkDegraded`] marker — after which the guard behaves
/// as a [`NullSink`], so workers never block on broken telemetry I/O and
/// results are never affected.
struct SinkGuard<'a> {
    sink: &'a dyn EventSink,
    degraded: AtomicBool,
}

impl std::fmt::Debug for SinkGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SinkGuard")
            .field("degraded", &self.degraded)
            .finish_non_exhaustive()
    }
}

impl<'a> SinkGuard<'a> {
    fn new(sink: &'a dyn EventSink) -> Self {
        SinkGuard {
            sink,
            degraded: AtomicBool::new(false),
        }
    }

    fn emit(&self, event: &EngineEvent) {
        if self.degraded.load(Ordering::Acquire) {
            return;
        }
        if let Err(e) = self.sink.emit(event) {
            if !self.degraded.swap(true, Ordering::AcqRel) {
                // Tell the stream why it is ending (best effort — the
                // sink may be gone entirely), then drop further events.
                let _ = self.sink.emit(&EngineEvent::SinkDegraded {
                    error: e.to_string(),
                });
                eprintln!("nocsyn-engine: telemetry sink degraded, events dropped from here: {e}");
            }
        }
    }
}

/// Renders a panic payload: `&str` and `String` payloads verbatim,
/// anything else as a fixed placeholder.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The execution engine: a worker count and a telemetry sink.
///
/// Cheap to construct per batch; holds no threads between runs (workers
/// are scoped to [`Engine::run`] and always joined before it returns, so
/// nothing leaks even when deadlines fire).
#[derive(Clone)]
pub struct Engine {
    workers: usize,
    sink: Arc<dyn EventSink>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("workers", &self.workers)
            .finish_non_exhaustive()
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// Creates an engine sized to the machine
    /// (`std::thread::available_parallelism`, 1 if unknown) with telemetry
    /// discarded.
    pub fn new() -> Self {
        let workers = thread::available_parallelism().map_or(1, |n| n.get());
        Engine {
            workers,
            sink: Arc::new(NullSink),
        }
    }

    /// Sets the worker count (clamped to at least 1). The worker count
    /// affects wall time only, never the selected results.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Installs a telemetry sink.
    #[must_use]
    pub fn with_sink(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.sink = sink;
        self
    }

    /// Configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs a batch of jobs and returns their outcomes in job order.
    ///
    /// Scheduling unit: one restart attempt. The bounded `(job, attempt)`
    /// queue is materialized up front and workers claim units through an
    /// atomic cursor, so a long job's portfolio and its batch neighbors
    /// share the pool. All workers are joined before this returns.
    pub fn run(&self, jobs: Vec<Job>) -> Vec<JobOutcome> {
        // Expand: a flat job maps 1:1 onto one exec sub-job; a decomposed
        // job fans out into one per cluster under `cluster_config` —
        // reseeded so every cluster search is independent and
        // reproducible for any worker count, with one port of degree
        // headroom reserved for the stitch phase.
        let mut execs: Vec<ExecJob> = Vec::new();
        let mut reductions: Vec<Reduction> = Vec::with_capacity(jobs.len());
        for job in &jobs {
            match job.request.mode() {
                SynthesisMode::Flat => {
                    execs.push(ExecJob {
                        name: job.name.clone(),
                        pattern: job.request.pattern().clone(),
                        config: job.request.config().clone(),
                        deadline: job.request.deadline(),
                        retry: job.retry,
                        injected_panics: job.injected_panics.clone(),
                    });
                    reductions.push(Reduction::Flat);
                }
                SynthesisMode::Decomposed { clusters } => {
                    let pattern = job.request.pattern();
                    let k = clusters.unwrap_or_else(|| auto_cluster_count(pattern.n_procs()));
                    match cluster_pattern(pattern, k) {
                        Err(e) => reductions.push(Reduction::PlanFailed(e)),
                        Ok(plan) => {
                            for (ci, cluster) in plan.clusters().iter().enumerate() {
                                execs.push(ExecJob {
                                    name: format!("{}/c{ci}", job.name),
                                    pattern: cluster.pattern().clone(),
                                    config: cluster_config(job.request.config(), ci),
                                    deadline: job.request.deadline(),
                                    retry: job.retry,
                                    injected_panics: job.injected_panics.clone(),
                                });
                            }
                            reductions.push(Reduction::Decomposed(plan));
                        }
                    }
                }
            }
        }

        let units: Vec<(usize, usize)> = execs
            .iter()
            .enumerate()
            .flat_map(|(ei, exec)| (0..exec.attempts()).map(move |attempt| (ei, attempt)))
            .collect();
        let states: Vec<JobState> = execs.iter().map(|e| JobState::new(e.attempts())).collect();
        let cursor = AtomicUsize::new(0);
        let sink = SinkGuard::new(self.sink.as_ref());
        if !units.is_empty() {
            thread::scope(|scope| {
                for _ in 0..self.workers.min(units.len()) {
                    scope.spawn(|| self.work(&sink, &execs, &states, &units, &cursor));
                }
            });
        }

        // Reduce exec outcomes back into job outcomes, in job order. A
        // job's exec sub-jobs are contiguous in `execs`.
        let mut exec_outcomes = execs
            .iter()
            .zip(states)
            .map(|(exec, state)| state.into_outcome(exec.name.clone()))
            .collect::<Vec<_>>()
            .into_iter();
        jobs.iter()
            .zip(reductions)
            .map(|(job, reduction)| match reduction {
                Reduction::Flat => exec_outcomes.next().expect("one exec per flat job"),
                Reduction::PlanFailed(e) => JobOutcome {
                    name: job.name.clone(),
                    status: JobStatus::Failed(JobError::Synth(e)),
                    result: None,
                    attempts_completed: 0,
                    attempts_total: 0,
                    elapsed: Duration::ZERO,
                    decomposition: None,
                },
                Reduction::Decomposed(plan) => {
                    let parts: Vec<JobOutcome> =
                        exec_outcomes.by_ref().take(plan.clusters().len()).collect();
                    reduce_decomposed(job, &plan, parts)
                }
            })
            .collect()
    }

    /// Convenience for a single unnamed flat job: the parallel equivalent
    /// of `nocsyn_synth::synthesize`, with an optional deadline.
    pub fn synthesize(
        &self,
        pattern: &AppPattern,
        config: &SynthesisConfig,
        deadline: Option<Duration>,
    ) -> JobOutcome {
        let mut builder = SynthesisRequest::builder(pattern.clone()).config(config.clone());
        if let Some(deadline) = deadline {
            builder = builder.deadline(deadline);
        }
        let request = builder
            .build()
            .expect("a flat request with no overrides always builds");
        self.run(vec![Job::new("synth", request)])
            .pop()
            .expect("one job in, one outcome out")
    }

    /// Worker loop: claim units until the queue drains.
    fn work(
        &self,
        sink: &SinkGuard<'_>,
        execs: &[ExecJob],
        states: &[JobState],
        units: &[(usize, usize)],
        cursor: &AtomicUsize,
    ) {
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            let Some(&(ji, attempt)) = units.get(i) else {
                break;
            };
            let job = &execs[ji];
            let state = &states[ji];
            let started = *state.started.get_or_init(|| {
                sink.emit(&EngineEvent::JobStarted {
                    job: job.name.clone(),
                    attempts: state.attempts_total,
                    deadline_ms: job.deadline.map(|d| d.as_millis() as u64),
                });
                Instant::now()
            });
            self.check_deadline(sink, job, state, started);
            if !state.cancelled.load(Ordering::Acquire) {
                self.run_attempt(sink, job, state, attempt);
            }
            if state.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                self.finish_job(sink, job, state, started);
            }
        }
    }

    /// Cancels the job once its deadline has passed (checked at unit
    /// granularity: an in-flight attempt is never interrupted).
    fn check_deadline(
        &self,
        sink: &SinkGuard<'_>,
        job: &ExecJob,
        state: &JobState,
        started: Instant,
    ) {
        let Some(deadline) = job.deadline else { return };
        if state.cancelled.load(Ordering::Acquire) || started.elapsed() < deadline {
            return;
        }
        state.cancelled.store(true, Ordering::Release);
        if !state.deadline_hit.swap(true, Ordering::AcqRel) {
            sink.emit(&EngineEvent::DeadlineExceeded {
                job: job.name.clone(),
                completed_attempts: state.completed.load(Ordering::Acquire),
            });
        }
    }

    /// Runs one restart attempt — under `catch_unwind`, with the job's
    /// bounded retry budget — and merges a success into the stable argmin
    /// reduction. Exhausting the budget fails the job (first error wins)
    /// and cancels its remaining attempts; the batch carries on.
    fn run_attempt(&self, sink: &SinkGuard<'_>, job: &ExecJob, state: &JobState, attempt: usize) {
        // Some after the first loop iteration; the loop always runs once.
        let mut last_error: Option<JobError> = None;
        for retry in 0..=job.retry.max_retries {
            if retry > 0 && !job.retry.backoff.is_zero() {
                thread::sleep(job.retry.backoff);
            }
            let t0 = Instant::now();
            let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
                if retry == 0 && job.injected_panics.contains(&attempt) {
                    panic!("injected panic (attempt {attempt})");
                }
                synthesize_retry(&job.pattern, &job.config, attempt, retry)
            }));
            match outcome {
                Ok(Ok(result)) => {
                    sink.emit(&EngineEvent::RestartCompleted {
                        job: job.name.clone(),
                        attempt,
                        seed: retry_seed(&job.config, attempt, retry),
                        links: result.report.n_links,
                        switches: result.report.n_switches,
                        constraints_met: result.report.constraints_met,
                        moves: result.report.moves_tried,
                        elapsed_ms: t0.elapsed().as_millis() as u64,
                    });
                    state.completed.fetch_add(1, Ordering::AcqRel);
                    state
                        .moves
                        .fetch_add(result.report.moves_tried, Ordering::AcqRel);
                    let mut best = state.best.lock().expect("engine lock never poisoned");
                    let better = best.as_ref().is_none_or(|(best_attempt, best_result)| {
                        (portfolio_rank(&result), attempt)
                            < (portfolio_rank(best_result), *best_attempt)
                    });
                    if better {
                        *best = Some((attempt, result));
                    }
                    return;
                }
                Ok(Err(e)) => last_error = Some(JobError::Synth(e)),
                Err(payload) => {
                    let message = panic_message(payload.as_ref());
                    sink.emit(&EngineEvent::AttemptPanicked {
                        job: job.name.clone(),
                        attempt,
                        retry,
                        message: message.clone(),
                    });
                    last_error = Some(JobError::Panicked { message });
                }
            }
        }
        state.cancelled.store(true, Ordering::Release);
        let mut error = state.error.lock().expect("engine lock never poisoned");
        if error.is_none() {
            *error = last_error;
        }
    }

    /// Last unit of a job: seal its elapsed time and emit `JobFinished`.
    fn finish_job(&self, sink: &SinkGuard<'_>, job: &ExecJob, state: &JobState, started: Instant) {
        let elapsed = started.elapsed();
        *state.elapsed.lock().expect("engine lock never poisoned") = elapsed;
        let (links, switches) = {
            let best = state.best.lock().expect("engine lock never poisoned");
            best.as_ref().map_or((None, None), |(_, r)| {
                (Some(r.report.n_links), Some(r.report.n_switches))
            })
        };
        sink.emit(&EngineEvent::JobFinished {
            job: job.name.clone(),
            status: state.status().label().to_string(),
            completed_attempts: state.completed.load(Ordering::Acquire),
            links,
            switches,
            moves: state.moves.load(Ordering::Acquire),
            elapsed_ms: elapsed.as_millis() as u64,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocsyn_model::{Phase, PhaseSchedule};
    use nocsyn_synth::synthesize;

    fn pattern(n: usize) -> AppPattern {
        let mut sched = PhaseSchedule::new(n);
        let forward: Vec<(usize, usize)> = (0..n).map(|p| (p, (p + 1) % n)).collect();
        let stride: Vec<(usize, usize)> = (0..n).map(|p| (p, (p + n / 2) % n)).collect();
        sched
            .push(Phase::from_flows(forward).expect("valid flows"))
            .expect("phase fits");
        sched
            .push(Phase::from_flows(stride).expect("valid flows"))
            .expect("phase fits");
        AppPattern::from_schedule(&sched)
    }

    fn config() -> SynthesisConfig {
        SynthesisConfig::new().with_seed(0xE7A1).with_restarts(6)
    }

    fn request(pattern: AppPattern) -> SynthesisRequest {
        SynthesisRequest::builder(pattern)
            .config(config())
            .build()
            .expect("flat request builds")
    }

    #[test]
    fn matches_sequential_synthesize_for_any_worker_count() {
        let pattern = pattern(8);
        let config = config();
        let sequential = synthesize(&pattern, &config).expect("synthesis succeeds");
        for workers in [1usize, 2, 4, 8] {
            let outcome = Engine::new()
                .with_workers(workers)
                .synthesize(&pattern, &config, None);
            assert_eq!(outcome.status, JobStatus::Completed, "workers={workers}");
            assert_eq!(outcome.attempts_completed, 6);
            let result = outcome.result.expect("completed job has a result");
            assert_eq!(result.report, sequential.report, "workers={workers}");
            assert_eq!(result.routes, sequential.routes, "workers={workers}");
            assert_eq!(result.placement, sequential.placement, "workers={workers}");
        }
    }

    #[test]
    fn batch_outcomes_come_back_in_job_order() {
        let jobs = vec![
            Job::new("a", request(pattern(4))),
            Job::new("b", request(pattern(8))),
            Job::new("c", request(pattern(6))),
        ];
        let outcomes = Engine::new().with_workers(4).run(jobs);
        let names: Vec<&str> = outcomes.iter().map(|o| o.name.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
        for o in &outcomes {
            assert_eq!(o.status, JobStatus::Completed, "{}", o.name);
            assert!(o.result.is_some(), "{}", o.name);
            assert_eq!(o.attempts_completed, o.attempts_total, "{}", o.name);
        }
    }

    #[test]
    fn zero_deadline_degrades_without_panicking() {
        let late = SynthesisRequest::builder(pattern(8))
            .config(config())
            .deadline_ms(0)
            .build()
            .expect("request builds");
        let job = Job::new("late", late);
        let outcome = Engine::new().with_workers(4).run(vec![job]).pop().unwrap();
        assert_eq!(outcome.status, JobStatus::DeadlineExceeded);
        assert!(outcome.result.is_none());
        assert_eq!(outcome.attempts_completed, 0);
        assert_eq!(outcome.attempts_total, 6);
    }

    #[test]
    fn empty_pattern_fails_the_job_but_not_the_batch() {
        let empty = AppPattern::from_schedule(&PhaseSchedule::new(0));
        let jobs = vec![
            Job::new("bad", request(empty)),
            Job::new("good", request(pattern(4))),
        ];
        let outcomes = Engine::new().with_workers(2).run(jobs);
        assert!(matches!(outcomes[0].status, JobStatus::Failed(_)));
        assert!(outcomes[0].result.is_none());
        assert_eq!(outcomes[1].status, JobStatus::Completed);
        assert!(outcomes[1].result.is_some());
    }

    #[test]
    fn telemetry_covers_the_job_lifecycle() {
        let sink = Arc::new(CollectSink::new());
        let job = Job::new("cg-ish", request(pattern(8)));
        let outcome = Engine::new()
            .with_workers(2)
            .with_sink(sink.clone())
            .run(vec![job])
            .pop()
            .unwrap();
        assert_eq!(outcome.status, JobStatus::Completed);
        let events = sink.events();
        let kinds: Vec<&str> = events.iter().map(EngineEvent::kind).collect();
        assert_eq!(kinds.iter().filter(|k| **k == "job_started").count(), 1);
        assert_eq!(kinds.iter().filter(|k| **k == "job_finished").count(), 1);
        assert_eq!(
            kinds.iter().filter(|k| **k == "restart_completed").count(),
            6
        );
        assert_eq!(events.first().unwrap().kind(), "job_started");
        assert_eq!(events.last().unwrap().kind(), "job_finished");
        // Every restart event carries this job's name and a distinct attempt.
        let mut attempts: Vec<usize> = events
            .iter()
            .filter_map(|e| match e {
                EngineEvent::RestartCompleted { job, attempt, .. } => {
                    assert_eq!(job, "cg-ish");
                    Some(*attempt)
                }
                _ => None,
            })
            .collect();
        attempts.sort_unstable();
        assert_eq!(attempts, vec![0, 1, 2, 3, 4, 5]);
    }

    /// Regression pin for the search-effort telemetry: every restart and
    /// job-finished event must carry a `moves` counter, both in the typed
    /// event and in its JSON rendering, and the job total must be the sum
    /// over its restarts (all attempts' effort, not the winner's alone).
    #[test]
    fn moves_telemetry_is_pinned_in_event_json() {
        let sink = Arc::new(CollectSink::new());
        let outcome = Engine::new()
            .with_workers(2)
            .with_sink(sink.clone())
            .synthesize(&pattern(8), &config(), None);
        assert_eq!(outcome.status, JobStatus::Completed);
        let events = sink.events();
        let mut restart_sum = 0usize;
        let mut finished_moves = None;
        for e in &events {
            match e {
                EngineEvent::RestartCompleted { moves, .. } => {
                    assert!(*moves > 0, "a restart that searched reports its moves");
                    restart_sum += moves;
                    let json = e.to_json().to_string();
                    assert!(json.contains("\"moves\":"), "{json}");
                }
                EngineEvent::JobFinished { moves, .. } => {
                    finished_moves = Some(*moves);
                    let json = e.to_json().to_string();
                    assert!(json.contains("\"moves\":"), "{json}");
                }
                _ => {}
            }
        }
        assert_eq!(
            finished_moves.expect("job_finished event is emitted"),
            restart_sum,
            "job moves must aggregate every restart's effort"
        );
    }

    #[test]
    fn decomposed_job_is_worker_invariant_and_contention_free() {
        let req = SynthesisRequest::builder(pattern(16))
            .config(config())
            .mode(SynthesisMode::Decomposed { clusters: Some(2) })
            .build()
            .expect("request builds");
        let sink = Arc::new(CollectSink::new());
        let baseline = Engine::new()
            .with_workers(1)
            .with_sink(sink.clone())
            .run(vec![Job::new("d", req.clone())])
            .pop()
            .expect("one outcome");
        assert_eq!(baseline.status, JobStatus::Completed);
        let summary = baseline
            .decomposition
            .expect("decomposed job carries a summary");
        assert_eq!(summary.clusters, 2);
        assert!(summary.cut_flows > 0);
        assert_eq!(baseline.attempts_total, 2 * config().restarts());
        assert_eq!(baseline.attempts_completed, baseline.attempts_total);
        let base = baseline
            .result
            .as_ref()
            .expect("completed job has a result");
        assert!(base.report.contention_free);
        // Telemetry attributes units to the per-cluster sub-jobs.
        let started: Vec<String> = sink
            .events()
            .into_iter()
            .filter_map(|e| match e {
                EngineEvent::JobStarted { job, .. } => Some(job),
                _ => None,
            })
            .collect();
        assert_eq!(started, ["d/c0", "d/c1"]);
        for workers in [2usize, 4, 8] {
            let outcome = Engine::new()
                .with_workers(workers)
                .run(vec![Job::new("d", req.clone())])
                .pop()
                .expect("one outcome");
            assert_eq!(outcome.status, JobStatus::Completed, "workers={workers}");
            let result = outcome.result.expect("completed job has a result");
            assert_eq!(result.report, base.report, "workers={workers}");
            assert_eq!(result.routes, base.routes, "workers={workers}");
            assert_eq!(outcome.decomposition, Some(summary), "workers={workers}");
        }
    }

    #[test]
    fn decomposed_empty_pattern_fails_cleanly() {
        let empty = AppPattern::from_schedule(&PhaseSchedule::new(0));
        let req = SynthesisRequest::builder(empty)
            .config(config())
            .mode(SynthesisMode::Decomposed { clusters: None })
            .build()
            .expect("request builds");
        let outcome = Engine::new()
            .run(vec![Job::new("bad", req)])
            .pop()
            .expect("one outcome");
        match &outcome.status {
            JobStatus::Failed(e) => assert_eq!(e.fingerprint(), "empty-pattern"),
            other => panic!("expected a failure, got {other:?}"),
        }
        assert!(outcome.result.is_none());
        assert!(outcome.decomposition.is_none());
        assert_eq!(outcome.attempts_total, 0);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        assert!(Engine::new().run(Vec::new()).is_empty());
    }

    #[test]
    fn status_labels_are_stable() {
        assert_eq!(JobStatus::Completed.label(), "completed");
        assert_eq!(JobStatus::DeadlineExceeded.label(), "deadline_exceeded");
        assert_eq!(
            JobStatus::Failed(SynthError::EmptyPattern.into()).label(),
            "failed"
        );
        assert_eq!(
            JobStatus::Failed(JobError::Panicked {
                message: "boom".into()
            })
            .label(),
            "failed"
        );
    }

    #[test]
    fn job_error_displays_both_causes() {
        let synth = JobError::from(SynthError::EmptyPattern);
        assert_eq!(synth.to_string(), SynthError::EmptyPattern.to_string());
        let panicked = JobError::Panicked {
            message: "boom".into(),
        };
        assert_eq!(panicked.to_string(), "attempt panicked: boom");
    }

    #[test]
    fn injected_panic_fails_the_job_in_isolation() {
        let sink = Arc::new(CollectSink::new());
        let jobs = vec![
            Job::new("poisoned", request(pattern(8))).with_injected_panic(2),
            Job::new("healthy", request(pattern(8))),
        ];
        let outcomes = Engine::new()
            .with_workers(4)
            .with_sink(sink.clone())
            .run(jobs);
        match &outcomes[0].status {
            JobStatus::Failed(JobError::Panicked { message }) => {
                assert!(message.contains("injected panic"), "{message}");
            }
            other => panic!("expected a panicked failure, got {other:?}"),
        }
        // The sibling is bit-identical to a panic-free sequential run.
        assert_eq!(outcomes[1].status, JobStatus::Completed);
        let baseline = synthesize(&pattern(8), &config()).expect("synthesis succeeds");
        let healthy = outcomes[1].result.as_ref().expect("healthy job succeeds");
        assert_eq!(healthy.report, baseline.report);
        assert_eq!(healthy.routes, baseline.routes);
        // The panic is a structured event, attributed to the right unit.
        let panics: Vec<EngineEvent> = sink
            .events()
            .into_iter()
            .filter(|e| e.kind() == "attempt_panicked")
            .collect();
        assert_eq!(panics.len(), 1);
        let EngineEvent::AttemptPanicked {
            job,
            attempt,
            retry,
            ..
        } = &panics[0]
        else {
            unreachable!("filtered on kind");
        };
        assert_eq!(job, "poisoned");
        assert_eq!((*attempt, *retry), (2, 0));
    }

    #[test]
    fn retry_policy_recovers_a_panicking_attempt() {
        let sink = Arc::new(CollectSink::new());
        let job = Job::new("flaky", request(pattern(8)))
            .with_injected_panic(1)
            .with_retry(RetryPolicy::retries(1));
        let outcome = Engine::new()
            .with_workers(2)
            .with_sink(sink.clone())
            .run(vec![job])
            .pop()
            .expect("one outcome");
        assert_eq!(outcome.status, JobStatus::Completed);
        assert_eq!(outcome.attempts_completed, 6);
        let events = sink.events();
        assert_eq!(
            events
                .iter()
                .filter(|e| e.kind() == "attempt_panicked")
                .count(),
            1
        );
        // The recovered attempt reports its deterministically reseeded run.
        let retried_seed = events
            .iter()
            .find_map(|e| match e {
                EngineEvent::RestartCompleted {
                    attempt: 1, seed, ..
                } => Some(*seed),
                _ => None,
            })
            .expect("attempt 1 completed on retry");
        assert_eq!(retried_seed, retry_seed(&config(), 1, 1));
    }

    /// Fails the first emit, accepts everything after — a transient I/O
    /// error mid-stream.
    struct FailOnceSink {
        failed: AtomicBool,
        inner: CollectSink,
    }

    impl EventSink for FailOnceSink {
        fn emit(&self, event: &EngineEvent) -> std::io::Result<()> {
            if !self.failed.swap(true, Ordering::AcqRel) {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::BrokenPipe,
                    "broken pipe",
                ));
            }
            self.inner.emit(event)
        }
    }

    #[test]
    fn broken_sink_degrades_loudly_and_never_affects_results() {
        let sink = Arc::new(FailOnceSink {
            failed: AtomicBool::new(false),
            inner: CollectSink::new(),
        });
        let outcome = Engine::new()
            .with_workers(2)
            .with_sink(sink.clone())
            .synthesize(&pattern(8), &config(), None);
        assert_eq!(outcome.status, JobStatus::Completed);
        let baseline = synthesize(&pattern(8), &config()).expect("synthesis succeeds");
        assert_eq!(
            outcome.result.expect("completed job has a result").report,
            baseline.report
        );
        // The stream ends with a single degradation marker; everything
        // after the failure is dropped, not half-written.
        let events = sink.inner.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind(), "sink_degraded");
    }
}
