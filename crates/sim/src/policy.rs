//! Route selection policy: deterministic source routing or adaptive
//! selection among alternates.

use nocsyn_model::Flow;
use nocsyn_topo::{Route, RouteTable};

use crate::{Engine, SimError};

/// How the network interface picks a route at message injection.
///
/// * [`RoutePolicy::deterministic`] — one fixed route per flow: source
///   routing on generated topologies, dimension-order routing on the mesh.
/// * [`RoutePolicy::adaptive`] — several alternate route tables (e.g. the
///   X-then-Y and Y-then-X minimal tables of a torus); at injection the
///   candidate with the fewest virtual channels currently held along it is
///   chosen. This approximates the paper's "true fully adaptive routing"
///   on the torus at injection granularity.
#[derive(Debug, Clone)]
pub struct RoutePolicy {
    tables: Vec<RouteTable>,
}

impl RoutePolicy {
    /// A fixed, deterministic routing function.
    pub fn deterministic(table: RouteTable) -> Self {
        RoutePolicy {
            tables: vec![table],
        }
    }

    /// Adaptive selection among alternate tables (least-congested wins,
    /// earlier table breaking ties).
    ///
    /// # Panics
    ///
    /// Panics if `tables` is empty.
    pub fn adaptive(tables: Vec<RouteTable>) -> Self {
        assert!(
            !tables.is_empty(),
            "adaptive policy needs at least one table"
        );
        RoutePolicy { tables }
    }

    /// Number of alternate tables.
    pub fn n_alternates(&self) -> usize {
        self.tables.len()
    }

    /// The route the *first* table assigns to `flow`, ignoring congestion
    /// — the zero-load choice, useful for static analysis (Theorem 1
    /// verification) where no engine state exists.
    pub fn first_route(&self, flow: Flow) -> Option<&Route> {
        self.tables.iter().find_map(|t| t.route(flow))
    }

    /// Selects the route for `flow` given current network state.
    ///
    /// # Errors
    ///
    /// [`SimError::UnroutedFlow`] if no table routes the flow.
    pub fn choose<'a>(&'a self, engine: &Engine, flow: Flow) -> Result<&'a Route, SimError> {
        let mut best: Option<(&Route, usize)> = None;
        for table in &self.tables {
            if let Some(route) = table.route(flow) {
                let congestion = engine.congestion(route);
                match best {
                    Some((_, c)) if c <= congestion => {}
                    _ => best = Some((route, congestion)),
                }
            }
        }
        best.map(|(r, _)| r).ok_or(SimError::UnroutedFlow { flow })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimConfig;
    use nocsyn_topo::regular;

    #[test]
    fn deterministic_returns_table_route() {
        let (net, routes) = regular::mesh(2, 2).unwrap();
        let engine = Engine::new(&net, SimConfig::paper());
        let policy = RoutePolicy::deterministic(routes.clone());
        let flow = Flow::from_indices(0, 3);
        let chosen = policy.choose(&engine, flow).unwrap();
        assert_eq!(chosen, routes.route(flow).unwrap());
    }

    #[test]
    fn unrouted_flow_errors() {
        let (net, _) = regular::mesh(2, 2).unwrap();
        let engine = Engine::new(&net, SimConfig::paper());
        let policy = RoutePolicy::deterministic(RouteTable::new());
        assert!(matches!(
            policy.choose(&engine, Flow::from_indices(0, 1)),
            Err(SimError::UnroutedFlow { .. })
        ));
    }

    #[test]
    fn adaptive_avoids_congested_alternate() {
        let (net, xy, yx) = regular::torus_with_alternates(4, 4).unwrap();
        let mut engine = Engine::new(&net, SimConfig::paper());
        let policy = RoutePolicy::adaptive(vec![xy.clone(), yx.clone()]);
        let flow = Flow::from_indices(0, 5);
        // Untouched network: tie, so the first (XY) table wins.
        assert_eq!(
            policy.choose(&engine, flow).unwrap(),
            xy.route(flow).unwrap()
        );
        // Congest the XY route by injecting a long message along it.
        let blocker = Flow::from_indices(0, 1);
        let blocker_route = xy.route(blocker).unwrap().clone();
        engine.inject(blocker, 4096, &blocker_route, 0, 0);
        for _ in 0..8 {
            engine.step();
        }
        // XY for 0->5 shares the 0->1 column/row prefix; YX should now win.
        let chosen = policy.choose(&engine, flow).unwrap();
        assert_eq!(chosen, yx.route(flow).unwrap());
    }

    #[test]
    #[should_panic(expected = "at least one table")]
    fn adaptive_requires_tables() {
        let _ = RoutePolicy::adaptive(Vec::new());
    }
}
