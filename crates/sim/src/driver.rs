//! Closed-loop phase-parallel application driver.
//!
//! Reproduces the paper's trace-driven measurement: each process walks the
//! application's phases in order — paying send overhead, blocking on its
//! receive, then computing — while its messages contend in the flit-level
//! engine. A process stalled waiting on a congested message delays its own
//! later phases, which in turn delays everyone who communicates with it:
//! the lock-step coupling through which "contention ... could account for
//! as much as a 30% degradation" (Section 1).

use std::collections::HashMap;

use nocsyn_model::{Flow, PhaseSchedule};
use nocsyn_topo::Network;

use crate::{Engine, ExecutionStats, ProcStats, RoutePolicy, SimConfig, SimError};

/// Per-phase, per-process communication obligations.
#[derive(Debug, Clone)]
struct PhaseInfo {
    /// `send[p]` — the flow process `p` sends in this phase, if any.
    send: Vec<Option<Flow>>,
    /// `recv[p]` — the flow process `p` receives in this phase, if any.
    recv: Vec<Option<Flow>>,
    bytes: u32,
    compute: u64,
}

#[derive(Debug, Clone, Copy)]
enum ProcState {
    /// Will begin its next phase step at the given cycle.
    ReadyAt(u64),
    /// Blocked on the delivery of `(phase tag, flow)`; waiting since
    /// `since`.
    Waiting { since: u64 },
    /// Finished all phases at the given cycle.
    Done(u64),
}

#[derive(Debug, Clone, Copy)]
struct Proc {
    step: usize,
    state: ProcState,
    comm: u64,
}

/// Drives a [`PhaseSchedule`] through the flit-level engine and reports
/// execution and communication time.
#[derive(Debug)]
pub struct AppDriver<'a> {
    net: &'a Network,
    policy: RoutePolicy,
    config: SimConfig,
}

impl<'a> AppDriver<'a> {
    /// Creates a driver over `net` with the given routing policy and
    /// simulator configuration.
    pub fn new(net: &'a Network, policy: RoutePolicy, config: SimConfig) -> Self {
        AppDriver {
            net,
            policy,
            config,
        }
    }

    /// Runs the application to completion.
    ///
    /// # Errors
    ///
    /// * [`SimError::ProcCountMismatch`] if the schedule and network
    ///   disagree on process count.
    /// * [`SimError::UnroutedFlow`] if a schedule flow has no route.
    /// * [`SimError::CycleCapExceeded`] if the run does not settle within
    ///   the configured cycle cap.
    pub fn run(&self, schedule: &PhaseSchedule) -> Result<ExecutionStats, SimError> {
        let n = schedule.n_procs();
        if n != self.net.n_procs() {
            return Err(SimError::ProcCountMismatch {
                schedule: n,
                network: self.net.n_procs(),
            });
        }

        let phases: Vec<PhaseInfo> = schedule
            .iter()
            .map(|phase| {
                let mut info = PhaseInfo {
                    send: vec![None; n],
                    recv: vec![None; n],
                    bytes: phase.bytes(),
                    compute: phase.compute_ticks(),
                };
                for flow in phase.iter() {
                    info.send[flow.src.index()] = Some(flow);
                    info.recv[flow.dst.index()] = Some(flow);
                }
                info
            })
            .collect();

        let mut engine = Engine::new(self.net, self.config.clone());
        let mut procs = vec![
            Proc {
                step: 0,
                state: ProcState::ReadyAt(0),
                comm: 0,
            };
            n
        ];
        if phases.is_empty() {
            procs.iter_mut().for_each(|p| p.state = ProcState::Done(0));
        }
        let mut deliveries: HashMap<(u64, Flow), u64> = HashMap::new();
        let mut unfinished = if phases.is_empty() { 0 } else { n };

        while unfinished > 0 || !engine.is_idle() {
            let cycle = engine.cycle();
            if cycle >= self.config.max_cycles() {
                return Err(SimError::CycleCapExceeded { cycles: cycle });
            }

            // Fire process steps scheduled for this cycle.
            for pidx in 0..n {
                if let ProcState::ReadyAt(t) = procs[pidx].state {
                    if t <= cycle {
                        self.begin_step(
                            pidx,
                            &mut procs,
                            &phases,
                            &mut engine,
                            &deliveries,
                            cycle,
                            &mut unfinished,
                        )?;
                    }
                }
            }

            engine.step();

            // Record deliveries and unblock waiting processes.
            let delivered: Vec<(Flow, u64, u64)> = engine.delivered_last_step().collect();
            for (flow, tag, at) in delivered {
                deliveries.insert((tag, flow), at);
                let pidx = flow.dst.index();
                let proc = procs[pidx];
                if let ProcState::Waiting { since } = proc.state {
                    // Only unblock if this is the message the process is
                    // actually waiting for.
                    let info = &phases[proc.step];
                    if info.recv[pidx] == Some(flow) && proc.step as u64 == tag {
                        let completion = at.max(since) + self.config.recv_overhead();
                        self.finish_step(
                            pidx,
                            &mut procs,
                            &phases,
                            completion,
                            since,
                            &mut unfinished,
                        );
                    }
                }
            }
        }

        let per_proc: Vec<ProcStats> = procs
            .iter()
            .map(|p| ProcStats {
                comm_cycles: p.comm,
                finish_cycle: match p.state {
                    ProcState::Done(t) => t,
                    _ => unreachable!("loop exits only when all processes are done"),
                },
            })
            .collect();
        let exec_cycles = per_proc.iter().map(|p| p.finish_cycle).max().unwrap_or(0);
        let mean_comm_cycles =
            per_proc.iter().map(|p| p.comm_cycles).sum::<u64>() as f64 / n.max(1) as f64;
        let max_comm_cycles = per_proc.iter().map(|p| p.comm_cycles).max().unwrap_or(0);
        let packets = engine.packet_stats();
        Ok(ExecutionStats {
            exec_cycles,
            mean_comm_cycles,
            max_comm_cycles,
            delivered: packets.delivered,
            per_proc,
            link_utilization: engine.link_utilization(),
            packets,
        })
    }

    /// Begins the current phase step of process `pidx` at `cycle`: issues
    /// its send (if any), then either completes immediately (receive
    /// already delivered or none expected) or blocks.
    #[allow(clippy::too_many_arguments)]
    fn begin_step(
        &self,
        pidx: usize,
        procs: &mut [Proc],
        phases: &[PhaseInfo],
        engine: &mut Engine,
        deliveries: &HashMap<(u64, Flow), u64>,
        cycle: u64,
        unfinished: &mut usize,
    ) -> Result<(), SimError> {
        let step = procs[pidx].step;
        let info = &phases[step];
        let mut t = cycle;

        if let Some(flow) = info.send[pidx] {
            let route = self.policy.choose(engine, flow)?.clone();
            // Defense-in-depth behind `nocsyn-faults` repair: refuse to
            // drive traffic over a link the config marks failed instead of
            // simulating a transfer the hardware could not perform.
            if !self.config.failed_links().is_empty() {
                if let Some(&ch) = route
                    .hops()
                    .iter()
                    .find(|ch| self.config.failed_links().contains(&ch.link))
                {
                    return Err(SimError::FailedLinkUsed {
                        flow,
                        link: ch.link,
                    });
                }
            }
            t += self.config.send_overhead();
            procs[pidx].comm += self.config.send_overhead();
            engine.inject(flow, info.bytes, &route, t, step as u64);
        }

        match info.recv[pidx] {
            Some(flow) => {
                if let Some(&at) = deliveries.get(&(step as u64, flow)) {
                    let completion = at.max(t) + self.config.recv_overhead();
                    self.finish_step(pidx, procs, phases, completion, t, unfinished);
                } else {
                    procs[pidx].state = ProcState::Waiting { since: t };
                }
            }
            None => {
                let compute = self.config.jittered_compute(info.compute, pidx, step);
                self.advance_phase(pidx, procs, phases, t + compute, unfinished);
            }
        }
        Ok(())
    }

    /// Completes a receive that ends at `completion` (waiting began at
    /// `since`), accounting the blocked span as communication time.
    fn finish_step(
        &self,
        pidx: usize,
        procs: &mut [Proc],
        phases: &[PhaseInfo],
        completion: u64,
        since: u64,
        unfinished: &mut usize,
    ) {
        procs[pidx].comm += completion - since;
        let step = procs[pidx].step;
        let compute = self
            .config
            .jittered_compute(phases[step].compute, pidx, step);
        self.advance_phase(pidx, procs, phases, completion + compute, unfinished);
    }

    fn advance_phase(
        &self,
        pidx: usize,
        procs: &mut [Proc],
        phases: &[PhaseInfo],
        ready: u64,
        unfinished: &mut usize,
    ) {
        procs[pidx].step += 1;
        if procs[pidx].step == phases.len() {
            procs[pidx].state = ProcState::Done(ready);
            *unfinished -= 1;
        } else {
            procs[pidx].state = ProcState::ReadyAt(ready);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocsyn_model::Phase;
    use nocsyn_topo::regular;

    fn exchange_schedule(n: usize, bytes: u32, compute: u64, phases: usize) -> PhaseSchedule {
        let mut sched = PhaseSchedule::new(n);
        for k in 0..phases {
            // Rotation by (k % (n-1)) + 1 positions: always a proper
            // fixed-point-free permutation.
            let shift = (k % (n - 1)) + 1;
            let mut phase = Phase::new().with_bytes(bytes).with_compute(compute);
            for p in 0..n {
                phase.add(Flow::from_indices(p, (p + shift) % n)).unwrap();
            }
            sched.push(phase).unwrap();
        }
        sched
    }

    #[test]
    fn single_message_accounting() {
        // One phase, one message 0 -> 1 on a crossbar.
        let (net, routes) = regular::crossbar(2).unwrap();
        let mut sched = PhaseSchedule::new(2);
        sched
            .push(
                Phase::from_flows([(0usize, 1usize)])
                    .unwrap()
                    .with_bytes(4)
                    .with_compute(100),
            )
            .unwrap();
        let stats = AppDriver::new(&net, RoutePolicy::deterministic(routes), SimConfig::paper())
            .run(&sched)
            .unwrap();
        assert_eq!(stats.delivered, 1);
        // Sender: 10 send overhead + 100 compute = finishes at 110.
        assert_eq!(stats.per_proc[0].finish_cycle, 110);
        assert_eq!(stats.per_proc[0].comm_cycles, 10);
        // Receiver: waits from 0; message injected at 10, 2 flits over 2
        // channels -> delivered at 10 + 2 advances + ... then +10 recv
        // overhead + 100 compute.
        assert!(stats.per_proc[1].finish_cycle > 120);
        assert!(stats.per_proc[1].comm_cycles >= 20);
        assert_eq!(stats.exec_cycles, stats.per_proc[1].finish_cycle);
    }

    #[test]
    fn empty_schedule_finishes_immediately() {
        let (net, routes) = regular::crossbar(2).unwrap();
        let sched = PhaseSchedule::new(2);
        let stats = AppDriver::new(&net, RoutePolicy::deterministic(routes), SimConfig::paper())
            .run(&sched)
            .unwrap();
        assert_eq!(stats.exec_cycles, 0);
        assert_eq!(stats.delivered, 0);
    }

    #[test]
    fn proc_count_mismatch_is_rejected() {
        let (net, routes) = regular::crossbar(2).unwrap();
        let sched = PhaseSchedule::new(4);
        let err = AppDriver::new(&net, RoutePolicy::deterministic(routes), SimConfig::paper())
            .run(&sched)
            .unwrap_err();
        assert!(matches!(err, SimError::ProcCountMismatch { .. }));
    }

    #[test]
    fn injection_over_a_failed_link_is_refused() {
        let (net, routes) = regular::crossbar(2).unwrap();
        let flow = Flow::from_indices(0, 1);
        let dead = routes.route(flow).unwrap().hops()[0].link;
        let mut sched = PhaseSchedule::new(2);
        sched
            .push(Phase::from_flows([(0usize, 1usize)]).unwrap())
            .unwrap();
        let config = SimConfig::paper().with_failed_links([dead]);
        let err = AppDriver::new(&net, RoutePolicy::deterministic(routes), config)
            .run(&sched)
            .unwrap_err();
        assert_eq!(err, SimError::FailedLinkUsed { flow, link: dead });
    }

    #[test]
    fn failed_links_off_route_do_not_disturb_the_run() {
        let (net, routes) = regular::crossbar(2).unwrap();
        let mut sched = PhaseSchedule::new(2);
        sched
            .push(Phase::from_flows([(0usize, 1usize)]).unwrap())
            .unwrap();
        let baseline = AppDriver::new(
            &net,
            RoutePolicy::deterministic(routes.clone()),
            SimConfig::paper(),
        )
        .run(&sched)
        .unwrap();
        // A failed link no route touches: identical stats to no faults.
        let config = SimConfig::paper().with_failed_links([nocsyn_topo::LinkId(9999)]);
        let stats = AppDriver::new(&net, RoutePolicy::deterministic(routes), config)
            .run(&sched)
            .unwrap();
        assert_eq!(stats.exec_cycles, baseline.exec_cycles);
        assert_eq!(stats.delivered, baseline.delivered);
    }

    #[test]
    fn crossbar_beats_contended_line_on_exchange() {
        // 4 procs all-exchange: a crossbar must not be slower than a mesh
        // where messages share column links.
        let sched = exchange_schedule(4, 1024, 0, 3);
        let (xbar, xroutes) = regular::crossbar(4).unwrap();
        let (mesh, mroutes) = regular::mesh(2, 2).unwrap();
        let x = AppDriver::new(
            &xbar,
            RoutePolicy::deterministic(xroutes),
            SimConfig::paper(),
        )
        .run(&sched)
        .unwrap();
        let m = AppDriver::new(
            &mesh,
            RoutePolicy::deterministic(mroutes),
            SimConfig::paper(),
        )
        .run(&sched)
        .unwrap();
        assert!(x.exec_cycles <= m.exec_cycles);
        assert_eq!(x.delivered, m.delivered);
    }

    #[test]
    fn compute_gaps_extend_execution_not_comm() {
        let (net, routes) = regular::crossbar(4).unwrap();
        let fast = exchange_schedule(4, 256, 0, 2);
        let slow = exchange_schedule(4, 256, 5_000, 2);
        let policy = RoutePolicy::deterministic(routes);
        let a = AppDriver::new(&net, policy.clone(), SimConfig::paper())
            .run(&fast)
            .unwrap();
        let b = AppDriver::new(&net, policy, SimConfig::paper())
            .run(&slow)
            .unwrap();
        assert!(b.exec_cycles > a.exec_cycles + 9_000);
        // Communication time itself is unchanged by compute.
        assert!((b.mean_comm_cycles - a.mean_comm_cycles).abs() < 64.0);
        assert!(b.comm_fraction() < a.comm_fraction());
    }

    #[test]
    fn lockstep_coupling_propagates_delay() {
        // Ring exchange where proc 0's first message is huge: everyone's
        // finish time is dragged by the slow link through lock-step
        // dependences across phases.
        let (net, routes) = regular::crossbar(4).unwrap();
        let mut sched = PhaseSchedule::new(4);
        let mut p1 = Phase::new().with_bytes(8192);
        for p in 0..4 {
            p1.add(Flow::from_indices(p, (p + 1) % 4)).unwrap();
        }
        sched.push(p1).unwrap();
        let mut p2 = Phase::new().with_bytes(64);
        for p in 0..4 {
            p2.add(Flow::from_indices(p, (p + 3) % 4)).unwrap();
        }
        sched.push(p2).unwrap();
        let stats = AppDriver::new(&net, RoutePolicy::deterministic(routes), SimConfig::paper())
            .run(&sched)
            .unwrap();
        // 8 KiB = 2049 flits: phase 1 dominates everyone's finish time.
        for p in stats.per_proc {
            assert!(p.finish_cycle > 2_000);
        }
        assert_eq!(stats.delivered, 8);
    }
}
