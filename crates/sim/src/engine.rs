//! The cycle-driven wormhole engine.

use nocsyn_model::Flow;
use nocsyn_topo::{Channel, Direction, Network, Route};

use crate::packet::{Packet, PacketId, PacketState};
use crate::stats::PacketStats;
use crate::{SimConfig, SimError};

/// Open-loop flit-level simulator: inject messages at chosen cycles over
/// explicit routes, step the clock, observe deliveries.
///
/// # Model
///
/// Each message is a rigid worm of flits. A worm holds one virtual channel
/// on every physical channel it currently spans; it advances its head by
/// at most one slot per cycle, and an advance moves one flit across every
/// spanned channel — so each physical channel grants its 1-flit/cycle
/// bandwidth to at most one worm per cycle, which is how virtual channels
/// multiplex the wire. A worm that cannot acquire a virtual channel on the
/// next link, or loses bandwidth arbitration (round-robin priority),
/// stalls whole. Worms that make no progress for the configured timeout
/// are killed and retransmitted (regressive deadlock recovery, as in the
/// paper).
#[derive(Debug)]
pub struct Engine {
    config: SimConfig,
    /// `vc_owner[channel][vc]` — which packet holds each virtual channel.
    vc_owner: Vec<Vec<Option<PacketId>>>,
    packets: Vec<Packet>,
    active: Vec<PacketId>,
    pending: Vec<PacketId>,
    cycle: u64,
    rr: usize,
    deadlock_kills: u64,
    delivered_last_step: Vec<PacketId>,
    claims: Vec<bool>,
    /// Cycles each directed channel spent carrying a flit.
    busy: Vec<u64>,
}

/// Dense index of a directed channel: two per physical link.
fn channel_index(ch: Channel) -> usize {
    ch.link.index() * 2 + usize::from(matches!(ch.dir, Direction::Backward))
}

impl Engine {
    /// Creates an engine over `net` (which fixes the channel space).
    pub fn new(net: &Network, config: SimConfig) -> Self {
        let n_channels = net.n_links() * 2;
        Engine {
            vc_owner: vec![vec![None; config.vcs()]; n_channels],
            claims: vec![false; n_channels],
            busy: vec![0; n_channels],
            config,
            packets: Vec::new(),
            active: Vec::new(),
            pending: Vec::new(),
            cycle: 0,
            rr: 0,
            deadlock_kills: 0,
            delivered_last_step: Vec::new(),
        }
    }

    /// The simulator configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Current simulation cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Whether no packet is pending or in flight.
    pub fn is_idle(&self) -> bool {
        self.active.is_empty() && self.pending.is_empty()
    }

    /// Schedules a message of `bytes` over `route`, entering the network
    /// no earlier than cycle `at`. `tag` is an opaque caller label
    /// (e.g. a phase index) reported back on delivery.
    pub fn inject(&mut self, flow: Flow, bytes: u32, route: &Route, at: u64, tag: u64) -> usize {
        let id = PacketId(self.packets.len());
        let packet = Packet::new(flow, tag, bytes, route, at, &self.config, channel_index);
        self.packets.push(packet);
        self.pending.push(id);
        id.0
    }

    /// Messages delivered during the most recent [`Engine::step`], as
    /// `(flow, tag, delivery_cycle)`.
    pub fn delivered_last_step(&self) -> impl Iterator<Item = (Flow, u64, u64)> + '_ {
        self.delivered_last_step.iter().map(|&pid| {
            let p = &self.packets[pid.0];
            let at = match p.state {
                PacketState::Delivered { at } => at,
                _ => unreachable!("delivered list holds delivered packets"),
            };
            (p.flow, p.tag, at)
        })
    }

    /// Cycles each directed channel has spent carrying a flit so far,
    /// indexed by `link * 2 + direction` (forward = 0). Divide by
    /// [`Engine::cycle`] for utilization — the quantity the paper's
    /// Section 3.4 calls *link utilization*.
    pub fn channel_busy_cycles(&self) -> &[u64] {
        &self.busy
    }

    /// Per-physical-link utilization over the run so far: the busier
    /// direction's busy fraction, per link index. Empty before the first
    /// cycle.
    pub fn link_utilization(&self) -> Vec<f64> {
        if self.cycle == 0 {
            return vec![0.0; self.busy.len() / 2];
        }
        self.busy
            .chunks(2)
            .map(|pair| pair.iter().copied().max().unwrap_or(0) as f64 / self.cycle as f64)
            .collect()
    }

    /// Total virtual channels currently held along `route` — the
    /// congestion metric adaptive injection uses.
    pub fn congestion(&self, route: &Route) -> usize {
        route
            .iter()
            .map(|ch| {
                self.vc_owner[channel_index(ch)]
                    .iter()
                    .filter(|o| o.is_some())
                    .count()
            })
            .sum()
    }

    /// Advances the simulation by one cycle.
    pub fn step(&mut self) {
        self.delivered_last_step.clear();

        // Activate packets whose injection time has arrived.
        let cycle = self.cycle;
        let mut newly_active: Vec<PacketId> = Vec::new();
        self.pending.retain(|&pid| match self.packets[pid.0].state {
            PacketState::Pending { inject_at } if inject_at <= cycle => {
                newly_active.push(pid);
                false
            }
            _ => true,
        });
        for pid in newly_active {
            self.packets[pid.0].state = PacketState::Active;
            self.active.push(pid);
        }

        // Bandwidth arbitration: rotate priority each cycle.
        self.claims.iter_mut().for_each(|c| *c = false);
        let n = self.active.len();
        if n > 0 {
            self.rr %= n;
            let order: Vec<PacketId> = (0..n).map(|i| self.active[(self.rr + i) % n]).collect();
            for pid in order {
                self.try_advance(pid);
            }
            self.rr += 1;
        }

        // Retire delivered packets and detect deadlocks.
        let timeout = self.config.deadlock_timeout();
        let retransmit = self.cycle + self.config.retransmit_delay();
        let mut killed = Vec::new();
        self.active.retain(|&pid| {
            let p = &self.packets[pid.0];
            match p.state {
                PacketState::Delivered { .. } => false,
                PacketState::Active if cycle.saturating_sub(p.last_progress) > timeout => {
                    killed.push(pid);
                    false
                }
                _ => true,
            }
        });
        for pid in killed {
            self.kill_and_requeue(pid, retransmit);
        }

        self.cycle += 1;
    }

    /// Runs until every packet is delivered.
    ///
    /// # Errors
    ///
    /// [`SimError::CycleCapExceeded`] if the configured cycle cap elapses
    /// first.
    pub fn run_until_idle(&mut self) -> Result<(), SimError> {
        while !self.is_idle() {
            if self.cycle >= self.config.max_cycles() {
                return Err(SimError::CycleCapExceeded { cycles: self.cycle });
            }
            self.step();
        }
        Ok(())
    }

    /// Aggregate statistics over all packets so far.
    pub fn packet_stats(&self) -> PacketStats {
        let mut delivered = 0u64;
        let mut total_latency = 0u64;
        let mut max_latency = 0u64;
        let mut retransmits = 0u64;
        for p in &self.packets {
            retransmits += u64::from(p.kills);
            if let PacketState::Delivered { at } = p.state {
                delivered += 1;
                let latency = at - p.first_inject;
                total_latency += latency;
                max_latency = max_latency.max(latency);
            }
        }
        PacketStats {
            delivered,
            mean_latency: if delivered > 0 {
                total_latency as f64 / delivered as f64
            } else {
                0.0
            },
            max_latency,
            deadlock_kills: self.deadlock_kills,
            retransmits,
        }
    }

    fn try_advance(&mut self, pid: PacketId) {
        // Snapshot the geometry (spans are small and Copy) so the commit
        // phase can mutate engine state without aliasing the packet.
        let (spans, h, tail) = {
            let p = &self.packets[pid.0];
            (p.spans.clone(), p.progress + 1, p.tail(p.progress + 1))
        };

        // Spans the worm overlaps after the move: these each carry one
        // flit this cycle and need this packet to win their bandwidth.
        let mut entering: Option<usize> = None;
        let mut overlapped: Vec<usize> = Vec::new();
        for (i, span) in spans.iter().enumerate() {
            if (span.start as i64) <= h && tail < span.end as i64 {
                overlapped.push(i);
            }
            if span.start as i64 == h {
                entering = Some(i);
            }
        }

        // Virtual-channel availability on the channel being entered.
        let mut grant_vc: Option<(usize, usize)> = None;
        if let Some(i) = entering {
            match self.vc_owner[spans[i].channel]
                .iter()
                .position(Option::is_none)
            {
                Some(vc) => grant_vc = Some((i, vc)),
                None => return, // blocked on VC allocation
            }
        }

        // Bandwidth: every overlapped channel must be unclaimed this cycle.
        if overlapped.iter().any(|&i| self.claims[spans[i].channel]) {
            return;
        }

        // Commit.
        for &i in &overlapped {
            self.claims[spans[i].channel] = true;
            self.busy[spans[i].channel] += 1;
        }
        if let Some((i, vc)) = grant_vc {
            self.vc_owner[spans[i].channel][vc] = Some(pid);
            self.packets[pid.0].vc_held[i] = Some(vc);
        }
        let cycle = self.cycle;
        let p = &mut self.packets[pid.0];
        p.progress = h;
        p.last_progress = cycle;

        // Release channels the tail has fully left.
        let released: Vec<(usize, usize)> = spans
            .iter()
            .enumerate()
            .filter_map(|(i, span)| {
                p.vc_held[i].and_then(|vc| {
                    (p.tail(h) >= span.end as i64).then(|| {
                        p.vc_held[i] = None;
                        (span.channel, vc)
                    })
                })
            })
            .collect();
        let delivered = p.delivered_at(h);
        if delivered {
            debug_assert!(p.vc_held.iter().all(Option::is_none));
            p.state = PacketState::Delivered { at: cycle };
        }
        for (channel, vc) in released {
            self.vc_owner[channel][vc] = None;
        }
        if delivered {
            self.delivered_last_step.push(pid);
        }
    }

    fn kill_and_requeue(&mut self, pid: PacketId, base_inject: u64) {
        self.deadlock_kills += 1;
        let released: Vec<(usize, usize)> = {
            let p = &self.packets[pid.0];
            p.spans
                .iter()
                .zip(&p.vc_held)
                .filter_map(|(span, vc)| vc.map(|vc| (span.channel, vc)))
                .collect()
        };
        for (channel, vc) in released {
            self.vc_owner[channel][vc] = None;
        }
        // Exponential backoff with a per-packet stagger: simultaneous
        // victims of one deadlock cycle must not re-collide forever.
        let p = &mut self.packets[pid.0];
        let backoff = self.config.retransmit_delay() << p.kills.min(8);
        let jitter = (pid.0 as u64 % 7) * self.config.retransmit_delay();
        p.reset_for_retransmit(base_inject + backoff + jitter);
        self.pending.push(pid);
    }
}

#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;

    /// Shortest route helper for tests.
    pub(crate) fn route_for(net: &Network, flow: Flow) -> Route {
        nocsyn_topo::shortest_route(net, flow).expect("test networks are connected")
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use nocsyn_model::ProcId;
    use nocsyn_topo::regular;
    use tests_support::route_for;

    /// p0 - s0 - s1 - p1, single middle link.
    fn line() -> Network {
        let mut net = Network::new(3);
        let s0 = net.add_switch();
        let s1 = net.add_switch();
        net.add_link(s0, s1).unwrap();
        net.attach(ProcId(0), s0).unwrap();
        net.attach(ProcId(1), s1).unwrap();
        net.attach(ProcId(2), s0).unwrap();
        net
    }

    #[test]
    fn unloaded_latency_is_pipeline_depth() {
        let net = line();
        let config = SimConfig::paper();
        let mut eng = Engine::new(&net, config.clone());
        let flow = Flow::from_indices(0, 1);
        let route = route_for(&net, flow);
        // 3 channels, 1 cycle each; 4-byte payload -> 2 flits.
        eng.inject(flow, 4, &route, 0, 0);
        eng.run_until_idle().unwrap();
        let stats = eng.packet_stats();
        assert_eq!(stats.delivered, 1);
        // Delivery needs the head to reach slot total_slots + n_flits - 1
        // = 3 + 2 - 1 = 4; the first advance lands at the injection cycle,
        // so latency equals that head position.
        assert_eq!(stats.max_latency, 4);
        assert_eq!(stats.deadlock_kills, 0);
    }

    #[test]
    fn latency_scales_with_message_length() {
        let net = line();
        let flow = Flow::from_indices(0, 1);
        let route = route_for(&net, flow);
        let mut lat = Vec::new();
        for bytes in [4u32, 64, 1024] {
            let mut eng = Engine::new(&net, SimConfig::paper());
            eng.inject(flow, bytes, &route, 0, 0);
            eng.run_until_idle().unwrap();
            lat.push(eng.packet_stats().max_latency);
        }
        assert!(lat[0] < lat[1] && lat[1] < lat[2]);
        // 1024 B = 256 flits + head: serialization dominates.
        assert_eq!(lat[2], 3 + 257 - 1);
    }

    #[test]
    fn two_worms_share_a_link_at_half_bandwidth() {
        // Both flows cross the single middle link forward (p0->p1, p2->p1
        // would share ejection; use p0->p1 and p2->p1? that shares eject).
        // Use p0->p1 and p2->p1: shares middle AND ejection. Expect the
        // pair to finish in roughly twice the solo time.
        let net = line();
        let f1 = Flow::from_indices(0, 1);
        let f2 = Flow::from_indices(2, 1);
        let r1 = route_for(&net, f1);
        let r2 = route_for(&net, f2);

        let solo = {
            let mut eng = Engine::new(&net, SimConfig::paper());
            eng.inject(f1, 256, &r1, 0, 0);
            eng.run_until_idle().unwrap();
            eng.cycle()
        };
        let duo = {
            let mut eng = Engine::new(&net, SimConfig::paper());
            eng.inject(f1, 256, &r1, 0, 0);
            eng.inject(f2, 256, &r2, 0, 1);
            eng.run_until_idle().unwrap();
            eng.cycle()
        };
        assert!(duo > solo, "sharing must cost time: {duo} vs {solo}");
        assert!(
            duo <= 2 * solo + 8,
            "multiplexing should roughly halve bandwidth: {duo} vs {solo}"
        );
        assert_eq!(
            Engine::new(&net, SimConfig::paper())
                .packet_stats()
                .delivered,
            0
        );
    }

    #[test]
    fn vc_exhaustion_serializes() {
        // 1 VC: second worm must wait for the first to fully drain.
        let net = line();
        let f1 = Flow::from_indices(0, 1);
        let f2 = Flow::from_indices(2, 1);
        let r1 = route_for(&net, f1);
        let r2 = route_for(&net, f2);
        let config = SimConfig::paper().with_vcs(1);
        let mut eng = Engine::new(&net, config);
        eng.inject(f1, 256, &r1, 0, 0);
        eng.inject(f2, 256, &r2, 0, 1);
        eng.run_until_idle().unwrap();
        let stats = eng.packet_stats();
        assert_eq!(stats.delivered, 2);
        // Second latency ~ 2x first.
        assert!(stats.max_latency as f64 > 1.8 * (256.0 / 4.0));
    }

    #[test]
    fn opposite_directions_do_not_interfere() {
        let net = line();
        let f1 = Flow::from_indices(0, 1);
        let f2 = Flow::from_indices(1, 0);
        let r1 = route_for(&net, f1);
        let r2 = route_for(&net, f2);
        let solo = {
            let mut eng = Engine::new(&net, SimConfig::paper());
            eng.inject(f1, 256, &r1, 0, 0);
            eng.run_until_idle().unwrap();
            eng.cycle()
        };
        let both = {
            let mut eng = Engine::new(&net, SimConfig::paper());
            eng.inject(f1, 256, &r1, 0, 0);
            eng.inject(f2, 256, &r2, 0, 1);
            eng.run_until_idle().unwrap();
            eng.cycle()
        };
        assert_eq!(solo, both, "full-duplex directions are independent");
    }

    #[test]
    fn link_delay_adds_pipeline_latency() {
        let net = line();
        let flow = Flow::from_indices(0, 1);
        let route = route_for(&net, flow);
        // Middle link (id 0) takes 5 cycles.
        let config = SimConfig::paper().with_link_delays(vec![5]);
        let mut eng = Engine::new(&net, config);
        eng.inject(flow, 4, &route, 0, 0);
        eng.run_until_idle().unwrap();
        // total_slots = 1 + 5 + 1 = 7, 2 flits -> head position 8.
        assert_eq!(eng.packet_stats().max_latency, 8);
    }

    #[test]
    fn injection_time_is_respected() {
        let net = line();
        let flow = Flow::from_indices(0, 1);
        let route = route_for(&net, flow);
        let mut eng = Engine::new(&net, SimConfig::paper());
        eng.inject(flow, 4, &route, 100, 0);
        eng.run_until_idle().unwrap();
        let (_, _, at) = eng.delivered_last_step().next().unwrap();
        assert!(at >= 100);
        // Latency measured from requested injection.
        assert_eq!(eng.packet_stats().max_latency, 4);
    }

    #[test]
    fn crossbar_permutation_is_conflict_free() {
        let (net, routes) = regular::crossbar(4).unwrap();
        let mut eng = Engine::new(&net, SimConfig::paper());
        let flows = [(0usize, 1usize), (1, 2), (2, 3), (3, 0)];
        for &(s, d) in &flows {
            let f = Flow::from_indices(s, d);
            eng.inject(f, 256, routes.route(f).unwrap(), 0, 0);
        }
        let solo_cycles = {
            let mut e2 = Engine::new(&net, SimConfig::paper());
            let f = Flow::from_indices(0, 1);
            e2.inject(f, 256, routes.route(f).unwrap(), 0, 0);
            e2.run_until_idle().unwrap();
            e2.cycle()
        };
        eng.run_until_idle().unwrap();
        assert_eq!(eng.cycle(), solo_cycles, "permutation suffers no slowdown");
        assert_eq!(eng.packet_stats().delivered, 4);
    }

    #[test]
    fn deadlock_kill_and_retransmit_recovers() {
        // Two flows in opposite directions around a 2-switch "ring" of two
        // parallel links cannot deadlock; manufacture a real circular wait
        // instead: ring of 3 switches, 1 VC, three worms each spanning two
        // hops rotationally. With rigid worms and 1 VC each waits on the
        // next. The timeout must fire and retransmission must complete.
        let mut net = Network::new(6);
        let s: Vec<_> = (0..3).map(|_| net.add_switch()).collect();
        let l01 = net.add_link(s[0], s[1]).unwrap();
        let l12 = net.add_link(s[1], s[2]).unwrap();
        let l20 = net.add_link(s[2], s[0]).unwrap();
        for p in 0..3 {
            net.attach(ProcId(p), s[p]).unwrap();
        }
        for p in 3..6 {
            net.attach(ProcId(p), s[p - 3]).unwrap();
        }
        // Routes that each cross two ring links:
        // f0: p0 -> s0 -> s1 -> s2 -> p5? p5 attaches s2. Use explicit routes.
        use nocsyn_topo::Channel;
        let inj = |p: usize| net.injection_channel(ProcId(p)).unwrap();
        let ej = |p: usize| net.ejection_channel(ProcId(p)).unwrap();
        let f0 = Flow::from_indices(0, 5); // s0 -> s1 -> s2
        let r0 = Route::new(vec![
            inj(0),
            Channel::forward(l01),
            Channel::forward(l12),
            ej(5),
        ]);
        let f1 = Flow::from_indices(1, 3); // s1 -> s2 -> s0
        let r1 = Route::new(vec![
            inj(1),
            Channel::forward(l12),
            Channel::forward(l20),
            ej(3),
        ]);
        let f2 = Flow::from_indices(2, 4); // s2 -> s0 -> s1
        let r2 = Route::new(vec![
            inj(2),
            Channel::forward(l20),
            Channel::forward(l01),
            ej(4),
        ]);
        for (f, r) in [(f0, &r0), (f1, &r1), (f2, &r2)] {
            r.validate(&net, f).unwrap();
        }
        let config = SimConfig::paper()
            .with_vcs(1)
            .with_deadlock_timeout(200)
            .with_max_cycles(2_000_000);
        let mut eng = Engine::new(&net, config);
        // Long messages so each worm holds its first link while waiting
        // for the second -> classic cycle.
        eng.inject(f0, 2048, &r0, 0, 0);
        eng.inject(f1, 2048, &r1, 0, 1);
        eng.inject(f2, 2048, &r2, 0, 2);
        eng.run_until_idle().unwrap();
        let stats = eng.packet_stats();
        assert_eq!(stats.delivered, 3, "all messages eventually delivered");
        assert!(
            stats.deadlock_kills > 0,
            "the circular wait must be detected"
        );
    }

    #[test]
    fn three_vcs_prevent_that_deadlock() {
        // Same setup as above but with the paper's 3 VCs: at least one
        // worm can always slip through, so no kill should occur.
        let mut net = Network::new(6);
        let s: Vec<_> = (0..3).map(|_| net.add_switch()).collect();
        let l01 = net.add_link(s[0], s[1]).unwrap();
        let l12 = net.add_link(s[1], s[2]).unwrap();
        let l20 = net.add_link(s[2], s[0]).unwrap();
        for p in 0..3 {
            net.attach(ProcId(p), s[p]).unwrap();
        }
        for p in 3..6 {
            net.attach(ProcId(p), s[p - 3]).unwrap();
        }
        use nocsyn_topo::Channel;
        let inj = |p: usize| net.injection_channel(ProcId(p)).unwrap();
        let ej = |p: usize| net.ejection_channel(ProcId(p)).unwrap();
        let routes = [
            (
                Flow::from_indices(0, 5),
                Route::new(vec![
                    inj(0),
                    Channel::forward(l01),
                    Channel::forward(l12),
                    ej(5),
                ]),
            ),
            (
                Flow::from_indices(1, 3),
                Route::new(vec![
                    inj(1),
                    Channel::forward(l12),
                    Channel::forward(l20),
                    ej(3),
                ]),
            ),
            (
                Flow::from_indices(2, 4),
                Route::new(vec![
                    inj(2),
                    Channel::forward(l20),
                    Channel::forward(l01),
                    ej(4),
                ]),
            ),
        ];
        let mut eng = Engine::new(&net, SimConfig::paper().with_deadlock_timeout(100_000));
        for (f, r) in &routes {
            eng.inject(*f, 2048, r, 0, 0);
        }
        eng.run_until_idle().unwrap();
        let stats = eng.packet_stats();
        assert_eq!(stats.delivered, 3);
        assert_eq!(stats.deadlock_kills, 0);
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod utilization_tests {
    use super::*;
    use nocsyn_model::{Flow, ProcId};

    #[test]
    fn busy_cycles_match_flit_counts() {
        let mut net = Network::new(2);
        let s0 = net.add_switch();
        let s1 = net.add_switch();
        let mid = net.add_link(s0, s1).unwrap();
        net.attach(ProcId(0), s0).unwrap();
        net.attach(ProcId(1), s1).unwrap();
        let flow = Flow::from_indices(0, 1);
        let route = tests_support::route_for(&net, flow);
        let mut eng = Engine::new(&net, SimConfig::paper());
        eng.inject(flow, 64, &route, 0, 0); // 16 payload flits + head
        eng.run_until_idle().unwrap();
        // Every channel on the path carried exactly n_flits flits.
        let flits = SimConfig::paper().flits_for(64);
        let fwd_mid = channel_index(Channel::forward(mid));
        assert_eq!(eng.channel_busy_cycles()[fwd_mid], flits);
        // The reverse direction stayed idle.
        let bwd_mid = channel_index(Channel::backward(mid));
        assert_eq!(eng.channel_busy_cycles()[bwd_mid], 0);
        // Utilization is bounded by 1 and positive on the used link.
        let util = eng.link_utilization();
        assert!(util[mid.index()] > 0.0 && util[mid.index()] <= 1.0);
    }

    #[test]
    fn utilization_is_zero_before_any_cycle() {
        let mut net = Network::new(0);
        let a = net.add_switch();
        let b = net.add_switch();
        net.add_link(a, b).unwrap();
        let eng = Engine::new(&net, SimConfig::paper());
        assert_eq!(eng.link_utilization(), vec![0.0]);
    }
}
