//! Flit-level network simulation.
//!
//! This crate is the reproduction's stand-in for IRFlexSim, the flit-level
//! simulator the paper uses for its performance evaluation (Section 4.2).
//! It models:
//!
//! * **Wormhole switching** — each message is a worm of 32-bit flits that
//!   holds a virtual channel on every link it spans from head to tail;
//!   physical link bandwidth (one flit per cycle) is multiplexed between
//!   the virtual channels (3 per link by default, as in the paper).
//! * **Link delay** — proportional to physical length in tiles (minimum
//!   one cycle), configurable per link from a floorplan.
//! * **Send/receive overhead** — ten cycles each, after the LogP-style
//!   accounting the paper cites.
//! * **Deadlock handling** — detection by progress timeout and *regressive
//!   recovery*: deadlocked messages are killed and retransmitted, exactly
//!   the paper's scheme.
//! * **Routing** — deterministic source routing from a [`RouteTable`]
//!   (used for generated networks and DOR on the mesh), or adaptive
//!   selection among alternate minimal route tables at injection (the
//!   stand-in for the paper's true fully-adaptive routing on the torus).
//!
//! Two front ends share the engine: [`Engine`] for open-loop injection
//! (inject messages at given cycles, observe latency), and [`AppDriver`]
//! for closed-loop phase-parallel execution, which reproduces the paper's
//! trace-driven measurement of *total execution time* and *communication
//! time* including waiting and overhead.
//!
//! [`RouteTable`]: nocsyn_topo::RouteTable
//!
//! # Example
//!
//! ```
//! use nocsyn_model::{Phase, PhaseSchedule};
//! use nocsyn_sim::{AppDriver, RoutePolicy, SimConfig};
//! use nocsyn_topo::regular;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut sched = PhaseSchedule::new(4);
//! sched.push(Phase::from_flows([(0usize, 3usize), (1, 2)])?.with_bytes(256))?;
//!
//! let (net, routes) = regular::mesh(2, 2)?;
//! let stats = AppDriver::new(&net, RoutePolicy::deterministic(routes), SimConfig::paper())
//!     .run(&sched)?;
//! assert!(stats.exec_cycles > 0);
//! assert_eq!(stats.delivered, 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod driver;
mod engine;
mod error;
mod packet;
mod policy;
mod stats;
mod trace_drive;

pub use config::SimConfig;
pub use driver::AppDriver;
pub use engine::Engine;
pub use error::SimError;
pub use policy::RoutePolicy;
pub use stats::{ExecutionStats, PacketStats, ProcStats};
pub use trace_drive::run_trace;
