//! Internal packet (worm) state.

use nocsyn_model::Flow;
use nocsyn_topo::Route;

use crate::SimConfig;

/// Identifier of a packet within an engine run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) struct PacketId(pub(crate) usize);

/// One channel of a packet's route, expanded to its slot interval.
///
/// The route is laid out on a discrete "slot" axis where each slot is one
/// cycle of head progress at full speed: channel `i` covers slots
/// `[start, end)` with `end - start` equal to its delay.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Span {
    /// Dense channel index in the engine's fabric.
    pub(crate) channel: usize,
    pub(crate) start: u64,
    pub(crate) end: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PacketState {
    /// Waiting for its injection cycle.
    Pending { inject_at: u64 },
    /// In the network; `progress` is the head's last completed slot.
    Active,
    /// Fully drained into the destination.
    Delivered { at: u64 },
}

/// A wormhole packet: a rigid worm of `n_flits` flits advancing along its
/// expanded route at most one slot per cycle.
#[derive(Debug, Clone)]
pub(crate) struct Packet {
    pub(crate) flow: Flow,
    /// Caller-chosen tag (the driver uses the phase index).
    pub(crate) tag: u64,
    pub(crate) spans: Vec<Span>,
    /// Slot index one past the final channel; the worm is delivered when
    /// its tail reaches this.
    pub(crate) total_slots: u64,
    pub(crate) n_flits: u64,
    /// Head position: last slot fully crossed; `-1` before entering.
    pub(crate) progress: i64,
    /// Per-span virtual channel currently held.
    pub(crate) vc_held: Vec<Option<usize>>,
    pub(crate) state: PacketState,
    /// Cycle of the last head advance (for deadlock detection).
    pub(crate) last_progress: u64,
    /// Cycle originally requested for injection (first attempt).
    pub(crate) first_inject: u64,
    /// How many times this packet was killed and retransmitted.
    pub(crate) kills: u32,
}

impl Packet {
    /// Expands `route` into spans using the config's per-link delays.
    pub(crate) fn new(
        flow: Flow,
        tag: u64,
        bytes: u32,
        route: &Route,
        inject_at: u64,
        config: &SimConfig,
        channel_index: impl Fn(nocsyn_topo::Channel) -> usize,
    ) -> Self {
        let mut spans = Vec::with_capacity(route.len());
        let mut slot = 0u64;
        for ch in route.iter() {
            let delay = u64::from(config.link_delay(ch.link));
            spans.push(Span {
                channel: channel_index(ch),
                start: slot,
                end: slot + delay,
            });
            slot += delay;
        }
        let n_flits = config.flits_for(bytes);
        Packet {
            flow,
            tag,
            total_slots: slot,
            n_flits,
            progress: -1,
            vc_held: vec![None; spans.len()],
            spans,
            state: PacketState::Pending { inject_at },
            last_progress: inject_at,
            first_inject: inject_at,
            kills: 0,
        }
    }

    /// The tail's position given head `progress` (may be negative while
    /// the worm is still streaming out of the source).
    pub(crate) fn tail(&self, progress: i64) -> i64 {
        progress - (self.n_flits as i64 - 1)
    }

    /// Whether advancing to `h` delivers the packet (tail past the last
    /// channel).
    pub(crate) fn delivered_at(&self, h: i64) -> bool {
        self.tail(h) >= self.total_slots as i64
    }

    /// Resets the packet for retransmission after a deadlock kill.
    pub(crate) fn reset_for_retransmit(&mut self, inject_at: u64) {
        self.progress = -1;
        self.vc_held.iter_mut().for_each(|v| *v = None);
        self.state = PacketState::Pending { inject_at };
        self.last_progress = inject_at;
        self.kills += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocsyn_model::ProcId;
    use nocsyn_topo::Network;

    fn tiny() -> (Network, Route) {
        let mut net = Network::new(2);
        let s0 = net.add_switch();
        let s1 = net.add_switch();
        net.add_link(s0, s1).unwrap();
        net.attach(ProcId(0), s0).unwrap();
        net.attach(ProcId(1), s1).unwrap();
        let flow = Flow::from_indices(0, 1);
        let route = crate::engine::tests_support::route_for(&net, flow);
        (net, route)
    }

    #[test]
    fn span_expansion_accumulates_delays() {
        let (_, route) = tiny();
        let config = SimConfig::paper().with_link_delays(vec![2, 1, 3]);
        let p = Packet::new(Flow::from_indices(0, 1), 0, 8, &route, 0, &config, |ch| {
            ch.link.index() * 2 + usize::from(matches!(ch.dir, nocsyn_topo::Direction::Backward))
        });
        // Route: inject (link of proc0), middle link 0, eject (link of
        // proc1). Link ids: 0 = switch link, 1 = attach p0, 2 = attach p1.
        assert_eq!(p.spans.len(), 3);
        assert_eq!(p.spans[0].start, 0);
        let total: u64 = p.spans.iter().map(|s| s.end - s.start).sum();
        assert_eq!(p.total_slots, total);
        assert_eq!(p.n_flits, 3); // 2 payload flits + head
        assert!(!p.delivered_at(0));
        assert!(p.delivered_at((p.total_slots + p.n_flits - 1) as i64));
    }

    #[test]
    fn retransmit_reset() {
        let (_, route) = tiny();
        let config = SimConfig::paper();
        let mut p = Packet::new(Flow::from_indices(0, 1), 0, 4, &route, 5, &config, |_| 0);
        p.progress = 3;
        p.vc_held[0] = Some(1);
        p.reset_for_retransmit(100);
        assert_eq!(p.progress, -1);
        assert!(p.vc_held.iter().all(Option::is_none));
        assert_eq!(p.kills, 1);
        assert_eq!(p.state, PacketState::Pending { inject_at: 100 });
        assert_eq!(p.first_inject, 5);
    }

    #[test]
    fn tail_tracks_flit_count() {
        let (_, route) = tiny();
        let config = SimConfig::paper();
        let p = Packet::new(
            Flow::from_indices(0, 1),
            0,
            16,
            &config_route(&route),
            0,
            &config,
            |_| 0,
        );
        assert_eq!(p.n_flits, 5);
        assert_eq!(p.tail(10), 6);
    }

    fn config_route(r: &Route) -> Route {
        r.clone()
    }
}
