//! Simulator configuration.

use std::collections::BTreeSet;

use nocsyn_topo::{LinkId, Network};

/// Tunable parameters of the flit-level simulator.
///
/// [`SimConfig::paper`] reproduces the setup of Section 4.2: 32-bit flits,
/// 3 virtual channels per physical link, 10-cycle send and receive
/// overheads, and link delay equal to physical length in tiles (minimum
/// one cycle — set per link with [`SimConfig::with_link_delays`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    flit_bytes: u32,
    vcs: usize,
    send_overhead: u64,
    recv_overhead: u64,
    deadlock_timeout: u64,
    retransmit_delay: u64,
    max_cycles: u64,
    link_delays: Vec<u32>,
    compute_jitter: f64,
    jitter_seed: u64,
    failed_links: BTreeSet<LinkId>,
}

impl SimConfig {
    /// The paper's simulation parameters.
    pub fn paper() -> Self {
        SimConfig {
            flit_bytes: 4,
            vcs: 3,
            send_overhead: 10,
            recv_overhead: 10,
            // Generous: a worm legitimately queued behind several kKiB
            // worms on one VC can stall for thousands of cycles; killing
            // it would be a false positive. Real deadlock cycles hold
            // forever, so late detection only delays recovery.
            deadlock_timeout: 20_000,
            retransmit_delay: 32,
            max_cycles: 50_000_000,
            link_delays: Vec::new(),
            compute_jitter: 0.0,
            jitter_seed: 0,
            failed_links: BTreeSet::new(),
        }
    }

    /// Overrides the flit width in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    #[must_use]
    pub fn with_flit_bytes(mut self, bytes: u32) -> Self {
        assert!(bytes > 0, "flits carry at least one byte");
        self.flit_bytes = bytes;
        self
    }

    /// Overrides the virtual-channel count per physical link.
    ///
    /// # Panics
    ///
    /// Panics if `vcs` is zero.
    #[must_use]
    pub fn with_vcs(mut self, vcs: usize) -> Self {
        assert!(vcs > 0, "need at least one virtual channel");
        self.vcs = vcs;
        self
    }

    /// Overrides the send/receive software overheads (cycles).
    #[must_use]
    pub fn with_overheads(mut self, send: u64, recv: u64) -> Self {
        self.send_overhead = send;
        self.recv_overhead = recv;
        self
    }

    /// Overrides the no-progress timeout after which a message is declared
    /// deadlocked, killed, and retransmitted.
    #[must_use]
    pub fn with_deadlock_timeout(mut self, cycles: u64) -> Self {
        self.deadlock_timeout = cycles;
        self
    }

    /// Overrides the simulation cycle cap (safety bound).
    #[must_use]
    pub fn with_max_cycles(mut self, cycles: u64) -> Self {
        self.max_cycles = cycles;
        self
    }

    /// Sets the per-process compute-time jitter: each computation gap is
    /// scaled by a deterministic pseudo-random factor in
    /// `[1 - jitter, 1 + jitter]`. Real executions skew this way, which
    /// makes adjacent contention periods overlap — the effect the paper
    /// credits for the residual gap between generated networks and the
    /// crossbar (Section 4.2).
    ///
    /// # Panics
    ///
    /// Panics if `jitter` is negative or ≥ 1.
    #[must_use]
    pub fn with_compute_jitter(mut self, jitter: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&jitter), "jitter must be in [0, 1)");
        self.compute_jitter = jitter;
        self.jitter_seed = seed;
        self
    }

    /// The jittered computation time for process `proc` at phase `step`,
    /// given the nominal `ticks`.
    pub fn jittered_compute(&self, ticks: u64, proc: usize, step: usize) -> u64 {
        if self.compute_jitter == 0.0 || ticks == 0 {
            return ticks;
        }
        // SplitMix64 over (proc, step), mapped to [-1, 1].
        let mut x = self
            .jitter_seed
            .wrapping_add((proc as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((step as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        let unit = (x as f64 / u64::MAX as f64) * 2.0 - 1.0;
        let scaled = ticks as f64 * (1.0 + self.compute_jitter * unit);
        scaled.max(0.0).round() as u64
    }

    /// Sets per-link delays in cycles (index = [`LinkId`]); unlisted links
    /// default to one cycle. Zero entries are clamped to one.
    #[must_use]
    pub fn with_link_delays(mut self, delays: Vec<u32>) -> Self {
        self.link_delays = delays;
        self
    }

    /// Flit width in bytes.
    pub fn flit_bytes(&self) -> u32 {
        self.flit_bytes
    }

    /// Virtual channels per physical link.
    pub fn vcs(&self) -> usize {
        self.vcs
    }

    /// Send overhead in cycles.
    pub fn send_overhead(&self) -> u64 {
        self.send_overhead
    }

    /// Receive overhead in cycles.
    pub fn recv_overhead(&self) -> u64 {
        self.recv_overhead
    }

    /// Deadlock detection timeout in cycles.
    pub fn deadlock_timeout(&self) -> u64 {
        self.deadlock_timeout
    }

    /// Delay before a killed message is retransmitted.
    pub fn retransmit_delay(&self) -> u64 {
        self.retransmit_delay
    }

    /// Simulation cycle cap.
    pub fn max_cycles(&self) -> u64 {
        self.max_cycles
    }

    /// Marks links as failed for the run. Injection is refused for any
    /// route that traverses a failed link — the defense-in-depth backstop
    /// behind `nocsyn-faults` route repair: a table that was repaired for
    /// the same scenario never trips it.
    #[must_use]
    pub fn with_failed_links(mut self, links: impl IntoIterator<Item = LinkId>) -> Self {
        self.failed_links.extend(links);
        self
    }

    /// Links marked failed for this run.
    pub fn failed_links(&self) -> &BTreeSet<LinkId> {
        &self.failed_links
    }

    /// The delay of a specific link in cycles (≥ 1).
    pub fn link_delay(&self, link: LinkId) -> u32 {
        self.link_delays
            .get(link.index())
            .copied()
            .unwrap_or(1)
            .max(1)
    }

    /// Number of flits a payload of `bytes` occupies, head flit included.
    pub fn flits_for(&self, bytes: u32) -> u64 {
        u64::from(bytes.div_ceil(self.flit_bytes)).max(1) + 1
    }

    /// Convenience: derives per-link delays for `net` from a link-length
    /// function (lengths in tiles; zero-length links cost one cycle).
    #[must_use]
    pub fn with_delays_from<F: FnMut(LinkId) -> u32>(self, net: &Network, mut length: F) -> Self {
        let delays = net.link_ids().map(|l| length(l).max(1)).collect();
        self.with_link_delays(delays)
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = SimConfig::paper();
        assert_eq!(c.flit_bytes(), 4);
        assert_eq!(c.vcs(), 3);
        assert_eq!(c.send_overhead(), 10);
        assert_eq!(c.recv_overhead(), 10);
        assert_eq!(c, SimConfig::default());
    }

    #[test]
    fn flit_accounting() {
        let c = SimConfig::paper();
        assert_eq!(c.flits_for(4), 2); // one payload flit + head
        assert_eq!(c.flits_for(5), 3);
        assert_eq!(c.flits_for(0), 2); // clamped to one payload flit
        assert_eq!(c.flits_for(4096), 1025);
    }

    #[test]
    fn link_delays_default_and_clamp() {
        let c = SimConfig::paper().with_link_delays(vec![3, 0]);
        assert_eq!(c.link_delay(LinkId(0)), 3);
        assert_eq!(c.link_delay(LinkId(1)), 1); // clamped
        assert_eq!(c.link_delay(LinkId(9)), 1); // default
    }

    #[test]
    #[should_panic(expected = "at least one virtual channel")]
    fn zero_vcs_rejected() {
        let _ = SimConfig::paper().with_vcs(0);
    }
}

#[cfg(test)]
mod jitter_tests {
    use super::*;

    #[test]
    fn zero_jitter_is_identity() {
        let c = SimConfig::paper();
        assert_eq!(c.jittered_compute(1_000, 3, 7), 1_000);
        assert_eq!(c.jittered_compute(0, 0, 0), 0);
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let c = SimConfig::paper().with_compute_jitter(0.25, 42);
        for proc in 0..8 {
            for step in 0..8 {
                let a = c.jittered_compute(1_000, proc, step);
                let b = c.jittered_compute(1_000, proc, step);
                assert_eq!(a, b, "same (proc, step) must repeat");
                assert!((750..=1250).contains(&a), "out of bounds: {a}");
            }
        }
        // Different seeds give different draws somewhere.
        let d = SimConfig::paper().with_compute_jitter(0.25, 43);
        let differs =
            (0..8).any(|p| d.jittered_compute(1_000, p, 0) != c.jittered_compute(1_000, p, 0));
        assert!(differs);
    }

    #[test]
    fn jitter_actually_varies_across_procs() {
        let c = SimConfig::paper().with_compute_jitter(0.5, 7);
        let draws: std::collections::BTreeSet<u64> =
            (0..16).map(|p| c.jittered_compute(10_000, p, 0)).collect();
        assert!(draws.len() > 8, "jitter draws look degenerate: {draws:?}");
    }

    #[test]
    #[should_panic(expected = "jitter must be in [0, 1)")]
    fn jitter_out_of_range_rejected() {
        let _ = SimConfig::paper().with_compute_jitter(1.5, 0);
    }
}
