//! Simulation statistics.

use std::fmt;

/// Aggregate packet-level statistics of an [`Engine`](crate::Engine) run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PacketStats {
    /// Messages fully delivered.
    pub delivered: u64,
    /// Mean delivery latency in cycles, measured from the first requested
    /// injection (so retransmission penalties are included).
    pub mean_latency: f64,
    /// Worst delivery latency in cycles.
    pub max_latency: u64,
    /// Messages killed by deadlock detection.
    pub deadlock_kills: u64,
    /// Retransmissions performed (equals kills unless a message was killed
    /// multiple times).
    pub retransmits: u64,
}

impl fmt::Display for PacketStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} delivered, mean latency {:.1}, max {}, {} deadlock kills",
            self.delivered, self.mean_latency, self.max_latency, self.deadlock_kills
        )
    }
}

/// Per-process timing from a closed-loop [`AppDriver`](crate::AppDriver)
/// run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcStats {
    /// Cycles this process spent communicating: send overheads, receive
    /// overheads, and time blocked waiting for messages.
    pub comm_cycles: u64,
    /// Cycle at which the process finished its last phase.
    pub finish_cycle: u64,
}

/// Results of a closed-loop application run — the quantities Figure 8 of
/// the paper plots.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecutionStats {
    /// Total execution time: the cycle the last process finishes.
    pub exec_cycles: u64,
    /// Mean per-process communication time (waiting and overhead
    /// included), the paper's "communication time".
    pub mean_comm_cycles: f64,
    /// Worst per-process communication time.
    pub max_comm_cycles: u64,
    /// Messages delivered.
    pub delivered: u64,
    /// Per-process detail.
    pub per_proc: Vec<ProcStats>,
    /// Network-level packet statistics.
    pub packets: PacketStats,
    /// Per-physical-link utilization (busier direction's busy fraction),
    /// indexed by link id.
    pub link_utilization: Vec<f64>,
}

impl ExecutionStats {
    /// Fraction of execution spent communicating (mean across processes).
    pub fn comm_fraction(&self) -> f64 {
        if self.exec_cycles == 0 {
            0.0
        } else {
            self.mean_comm_cycles / self.exec_cycles as f64
        }
    }
}

impl fmt::Display for ExecutionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "exec {} cycles, mean comm {:.0} cycles ({:.1}% of exec), {} messages",
            self.exec_cycles,
            self.mean_comm_cycles,
            100.0 * self.comm_fraction(),
            self.delivered
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comm_fraction_handles_zero() {
        assert_eq!(ExecutionStats::default().comm_fraction(), 0.0);
        let s = ExecutionStats {
            exec_cycles: 100,
            mean_comm_cycles: 25.0,
            ..Default::default()
        };
        assert!((s.comm_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn displays_are_informative() {
        let p = PacketStats {
            delivered: 3,
            mean_latency: 10.5,
            max_latency: 20,
            deadlock_kills: 1,
            retransmits: 1,
        };
        assert!(p.to_string().contains("3 delivered"));
        let e = ExecutionStats {
            exec_cycles: 1000,
            mean_comm_cycles: 100.0,
            delivered: 3,
            ..Default::default()
        };
        assert!(e.to_string().contains("exec 1000 cycles"));
    }
}
