//! Error type for simulation.

use std::error::Error;
use std::fmt;

use nocsyn_model::Flow;
use nocsyn_topo::LinkId;

/// Errors produced by the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A message was issued for a flow the routing policy cannot route.
    UnroutedFlow {
        /// The unrouted flow.
        flow: Flow,
    },
    /// The simulation exceeded its configured cycle cap without settling.
    CycleCapExceeded {
        /// The cap that was hit.
        cycles: u64,
    },
    /// The schedule references more processes than the network attaches.
    ProcCountMismatch {
        /// Processes in the schedule.
        schedule: usize,
        /// Processes in the network.
        network: usize,
    },
    /// A message was about to be injected on a route that traverses a
    /// link marked failed in the [`SimConfig`](crate::SimConfig) —
    /// the route table was not repaired for the configured fault
    /// scenario.
    FailedLinkUsed {
        /// The flow whose route crosses the failure.
        flow: Flow,
        /// The failed link the route traverses.
        link: LinkId,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnroutedFlow { flow } => write!(f, "no route for flow {flow}"),
            SimError::CycleCapExceeded { cycles } => {
                write!(f, "simulation exceeded the {cycles}-cycle cap")
            }
            SimError::ProcCountMismatch { schedule, network } => write!(
                f,
                "schedule has {schedule} processes but the network attaches {network}"
            ),
            SimError::FailedLinkUsed { flow, link } => write!(
                f,
                "route for flow {flow} traverses failed link {link} — repair the route table for this fault scenario"
            ),
        }
    }
}

impl Error for SimError {}

impl SimError {
    /// A short, stable, kebab-case identifier for the error class, never
    /// embedding input-derived values (same convention as
    /// `ModelError::fingerprint`).
    pub fn fingerprint(&self) -> &'static str {
        match self {
            SimError::UnroutedFlow { .. } => "unrouted-flow",
            SimError::CycleCapExceeded { .. } => "cycle-cap-exceeded",
            SimError::ProcCountMismatch { .. } => "proc-count-mismatch",
            SimError::FailedLinkUsed { .. } => "failed-link-used",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            SimError::UnroutedFlow {
                flow: Flow::from_indices(0, 1)
            }
            .to_string(),
            "no route for flow (0, 1)"
        );
        assert!(SimError::CycleCapExceeded { cycles: 5 }
            .to_string()
            .contains("5-cycle"));
    }
}
