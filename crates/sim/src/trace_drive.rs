//! Open-loop trace-driven simulation.
//!
//! The closed-loop [`AppDriver`](crate::AppDriver) reproduces the paper's
//! execution-time measurements; this front end answers the complementary
//! question IRFlexSim-style open-loop runs answer: *given messages
//! injected at fixed times (a recorded trace), what latency does each
//! network deliver?* Trace ticks are interpreted directly as cycles.

use nocsyn_model::Trace;
use nocsyn_topo::Network;

use crate::{Engine, PacketStats, RoutePolicy, SimConfig, SimError};

/// Replays a timed [`Trace`] open-loop: message `m` is injected at cycle
/// `T_s(m)` over the route the policy picks at that instant, and the run
/// continues until every message drains.
///
/// Returns the aggregate packet statistics (latency measured from each
/// message's trace start time).
///
/// # Errors
///
/// * [`SimError::ProcCountMismatch`] if the trace and network disagree.
/// * [`SimError::UnroutedFlow`] for a flow the policy cannot route.
/// * [`SimError::CycleCapExceeded`] if the run does not settle.
pub fn run_trace(
    net: &Network,
    policy: &RoutePolicy,
    config: SimConfig,
    trace: &Trace,
) -> Result<PacketStats, SimError> {
    if trace.n_procs() != net.n_procs() {
        return Err(SimError::ProcCountMismatch {
            schedule: trace.n_procs(),
            network: net.n_procs(),
        });
    }
    let mut engine = Engine::new(net, config);

    // Inject in start-time order so adaptive policies see the network
    // state as of each message's injection instant. (Routes are chosen up
    // front per message; an adaptive policy therefore reacts to the
    // traffic injected before it, which is the granularity the paper's
    // injection-time adaptivity models.)
    let mut messages: Vec<_> = trace.messages().collect();
    messages.sort_by_key(|m| (m.start(), m.flow()));
    for (i, m) in messages.iter().enumerate() {
        let route = policy.choose(&engine, m.flow())?.clone();
        engine.inject(m.flow(), m.bytes(), &route, m.start().ticks(), i as u64);
    }
    engine.run_until_idle()?;
    Ok(engine.packet_stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocsyn_model::{Message, Phase, PhaseSchedule, ProcId, SkewModel};
    use nocsyn_topo::regular;

    fn trace2() -> Trace {
        let mut t = Trace::new(4);
        t.push(
            Message::new(ProcId(0), ProcId(3), 0, 10)
                .unwrap()
                .with_bytes(64),
        )
        .unwrap();
        t.push(
            Message::new(ProcId(1), ProcId(2), 5, 15)
                .unwrap()
                .with_bytes(64),
        )
        .unwrap();
        t
    }

    #[test]
    fn delivers_all_trace_messages() {
        let (net, routes) = regular::mesh(2, 2).unwrap();
        let stats = run_trace(
            &net,
            &RoutePolicy::deterministic(routes),
            SimConfig::paper(),
            &trace2(),
        )
        .unwrap();
        assert_eq!(stats.delivered, 2);
        assert_eq!(stats.deadlock_kills, 0);
    }

    #[test]
    fn proc_count_mismatch_rejected() {
        let (net, routes) = regular::mesh(2, 2).unwrap();
        let trace = Trace::new(9);
        assert!(matches!(
            run_trace(
                &net,
                &RoutePolicy::deterministic(routes),
                SimConfig::paper(),
                &trace
            ),
            Err(SimError::ProcCountMismatch { .. })
        ));
    }

    #[test]
    fn contention_raises_latency_versus_skewed_injection() {
        // Two messages sharing a mesh column: simultaneous injection
        // contends; staggered injection does not.
        let (net, routes) = regular::mesh(2, 2).unwrap();
        let mut hot = Trace::new(4);
        hot.push(
            Message::new(ProcId(0), ProcId(3), 0, 1)
                .unwrap()
                .with_bytes(1024),
        )
        .unwrap();
        hot.push(
            Message::new(ProcId(1), ProcId(3), 0, 1)
                .unwrap()
                .with_bytes(1024),
        )
        .unwrap();
        let mut cold = Trace::new(4);
        cold.push(
            Message::new(ProcId(0), ProcId(3), 0, 1)
                .unwrap()
                .with_bytes(1024),
        )
        .unwrap();
        cold.push(
            Message::new(ProcId(1), ProcId(3), 5_000, 5_001)
                .unwrap()
                .with_bytes(1024),
        )
        .unwrap();

        let policy = RoutePolicy::deterministic(routes);
        let hot_stats = run_trace(&net, &policy, SimConfig::paper(), &hot).unwrap();
        let cold_stats = run_trace(&net, &policy, SimConfig::paper(), &cold).unwrap();
        assert!(hot_stats.max_latency > cold_stats.max_latency);
    }

    #[test]
    fn skewed_schedule_traces_replay() {
        // Lower a phase schedule with skew and replay it — the §4 pipeline
        // for measuring the paper's skew tradeoff.
        let mut sched = PhaseSchedule::new(4);
        sched
            .push(
                Phase::from_flows([(0usize, 1usize), (2, 3)])
                    .unwrap()
                    .with_bytes(128),
            )
            .unwrap();
        sched
            .push(
                Phase::from_flows([(1usize, 2usize), (3, 0)])
                    .unwrap()
                    .with_bytes(128),
            )
            .unwrap();
        let trace = SkewModel::new(40, 9).apply(&sched);
        let (net, routes) = regular::crossbar(4).unwrap();
        let stats = run_trace(
            &net,
            &RoutePolicy::deterministic(routes),
            SimConfig::paper(),
            &trace,
        )
        .unwrap();
        assert_eq!(stats.delivered, 4);
    }
}
