//! End-to-end checks of the fuzzing subsystem: clean runs over the
//! built-in parse targets, byte-identical summaries across same-seed
//! runs, and — via a synthetic crashing target — crash dedup plus
//! first-try `NOCSYN_FUZZ_SEED` replay.

use nocsyn_fuzz::{gen, run, CaseBudget, CaseReport, FuzzConfig, FuzzTarget, Registry, REPLAY_ENV};

fn config(iters: u64, seed: u64) -> FuzzConfig {
    FuzzConfig {
        iters,
        seed,
        budget: CaseBudget::default(),
        replay: None,
    }
}

#[test]
fn builtin_targets_survive_two_thousand_cases() {
    let registry = Registry::with_builtin_targets();
    let mut corpus = gen::default_corpus();
    corpus.extend(nocsyn_fuzz::serve_probe::serve_corpus());
    corpus.extend(nocsyn_fuzz::certify_probe::certify_corpus());
    let summary = run(&registry, "all", &corpus, &config(2000, 1)).expect("known target");
    assert!(
        summary.clean(),
        "expected a clean run, got:\n{}",
        summary.render_human()
    );
    // The generators must exercise both sides of the boundary: some
    // inputs parse, some are rejected through typed error paths. The
    // differential probe and the chaos shadow-model probe have no
    // reject path by design (every byte string decodes to a valid edit
    // or op script), so the rejection check applies to the parse and
    // serve targets only.
    for t in &summary.targets {
        assert_eq!(t.cases, 2000);
        assert!(t.accepted > 0, "{}: nothing parsed", t.name);
        if t.name == "route_edit_probe" || t.name == "chaos_plan" {
            assert!(
                t.rejections.is_empty(),
                "{}: unexpected reject path",
                t.name
            );
        } else {
            assert!(!t.rejections.is_empty(), "{}: nothing rejected", t.name);
        }
    }
}

#[test]
fn same_seed_gives_byte_identical_json() {
    let registry = Registry::with_builtin_targets();
    let corpus = gen::default_corpus();
    let a = run(&registry, "all", &corpus, &config(500, 7)).expect("known target");
    let b = run(&registry, "all", &corpus, &config(500, 7)).expect("known target");
    assert_eq!(a.to_json().to_string(), b.to_json().to_string());

    let c = run(&registry, "all", &corpus, &config(500, 8)).expect("known target");
    assert_ne!(
        a.to_json().to_string(),
        c.to_json().to_string(),
        "different seeds should explore different inputs"
    );
}

/// A target that panics whenever the input length is a multiple of 7
/// (deterministic in the input, message varies with the length so the
/// fingerprint normalizer has something to collapse).
fn synthetic_crashy_target() -> FuzzTarget {
    FuzzTarget::new("crashy", |input| {
        if !input.is_empty() && input.len() % 7 == 0 {
            panic!("synthetic crash at len {}", input.len());
        }
        CaseReport::accepted(input.len() as u64, 0)
    })
}

#[test]
fn synthetic_crashes_deduplicate_and_replay_first_try() {
    let mut registry = Registry::new();
    registry.register(synthetic_crashy_target());
    let corpus = gen::default_corpus();

    let summary = run(&registry, "crashy", &corpus, &config(300, 3)).expect("known target");
    let target = &summary.targets[0];
    // Lengths 7, 14, 21, ... all hit, but the value-free fingerprint
    // collapses them into a single crash record.
    assert_eq!(target.crashes.len(), 1, "{}", summary.render_human());
    let crash = &target.crashes[0];
    assert_eq!(crash.fingerprint, "synthetic crash at len #");
    assert!(
        crash.count > 1,
        "expected repeated hits, got {}",
        crash.count
    );
    assert!(crash
        .replay_line("crashy")
        .starts_with(&format!("NOCSYN_FUZZ_SEED={} ", crash.first_seed)));

    // Replaying the recorded seed reproduces the crash on the very
    // first (and only) case.
    let replay = FuzzConfig {
        replay: Some(crash.first_seed),
        ..config(300, 3)
    };
    let replayed = run(&registry, "crashy", &corpus, &replay).expect("known target");
    let rt = &replayed.targets[0];
    assert_eq!(rt.cases, 1);
    assert_eq!(rt.crashes.len(), 1);
    assert_eq!(rt.crashes[0].message, crash.message);
    assert_eq!(rt.crashes[0].first_seed, crash.first_seed);
}

#[test]
fn replay_env_variable_is_honored() {
    // This test owns NOCSYN_FUZZ_SEED for the whole test binary; no
    // other test here reads it.
    std::env::set_var(REPLAY_ENV, "12345");
    let cfg = config(1000, 1).from_env();
    std::env::remove_var(REPLAY_ENV);
    assert_eq!(cfg.replay, Some(12345));

    let mut registry = Registry::new();
    registry.register(synthetic_crashy_target());
    let summary = run(&registry, "crashy", &gen::default_corpus(), &cfg).expect("known target");
    assert_eq!(summary.targets[0].cases, 1, "replay runs exactly one case");
}

#[test]
fn budget_violations_are_recorded_not_fatal() {
    let mut registry = Registry::new();
    registry.register(FuzzTarget::new("amplifier", |input| {
        // Claims absurd work/output; the runner must flag it but keep
        // going and report every case.
        CaseReport::accepted(u64::MAX, 100_000_000 + input.len() as u64)
    }));
    let summary = run(
        &registry,
        "amplifier",
        &gen::default_corpus(),
        &config(50, 2),
    )
    .expect("known target");
    let target = &summary.targets[0];
    assert_eq!(target.cases, 50);
    assert!(!summary.clean());
    assert_eq!(target.violations.len(), 2, "{}", summary.render_human());
    let whats: Vec<&str> = target.violations.iter().map(|v| v.what).collect();
    assert!(whats.contains(&"ticks"));
    assert!(whats.contains(&"output_units"));
    assert_eq!(target.violations[0].count, 50);
    let json = summary.to_json().to_string();
    assert!(json.contains("\"unique_budget_violations\":2"), "{json}");
}

#[test]
fn generated_inputs_respect_the_input_budget() {
    let mut registry = Registry::new();
    registry.register(FuzzTarget::new("measurer", |input| {
        assert!(input.len() <= 128, "input budget breached: {}", input.len());
        CaseReport::accepted(input.len() as u64, 0)
    }));
    let cfg = FuzzConfig {
        budget: CaseBudget {
            max_input_bytes: 128,
            ..CaseBudget::default()
        },
        ..config(500, 11)
    };
    let summary = run(&registry, "measurer", &gen::default_corpus(), &cfg).expect("known target");
    assert!(summary.clean(), "{}", summary.render_human());
}
