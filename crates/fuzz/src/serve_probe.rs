//! Fuzz target `serve_request`: the serve daemon's line protocol under
//! hostile input.
//!
//! Each case is one raw byte string handed to [`Server::handle_line`]
//! as a request line. The oracle is the ingestion contract the daemon
//! promises every client:
//!
//! * handling never panics, whatever the bytes (a panic is recorded as a
//!   crash by the runner);
//! * **every** reply — success or failure — is a well-formed JSON object
//!   with a string `reply` field;
//! * error replies carry their stable kebab-case fingerprint both in the
//!   typed [`ReplyKind`] and in the JSON `error` field, and the two
//!   agree.
//!
//! The server is shared across cases (that is the deployed shape — one
//! long-lived daemon, many requests), configured with tiny parse limits
//! and a one-restart cap so an accepted pattern costs one small anneal,
//! and fronted by its result cache so repeated corpus-derived patterns
//! are amortized to string lookups.

use std::sync::Arc;

use nocsyn_model::json;
use nocsyn_model::ParseLimits;
use nocsyn_serve::{ReplyKind, ServeOptions, Server};

use crate::target::{CaseReport, FuzzTarget};

/// Parse limits for fuzz-served patterns: big enough for interesting
/// structure, small enough that an accepted case stays cheap.
fn fuzz_limits() -> ParseLimits {
    ParseLimits::default()
        .with_max_procs(16)
        .with_max_phases(8)
        .with_max_messages(64)
        .with_max_input_bytes(2048)
}

/// Builds the shared fuzz server: tiny limits, one restart, no disk.
fn fuzz_server() -> Server {
    Server::new(ServeOptions {
        limits: fuzz_limits(),
        cache_capacity: 64,
        max_restarts: Some(1),
        workers: 1,
        ..ServeOptions::default()
    })
}

/// Built-in target: `Server::handle_line` with the well-formed-reply
/// oracle.
pub fn serve_request_target() -> FuzzTarget {
    let server = Arc::new(fuzz_server());
    FuzzTarget::new("serve_request", move |input| {
        let ticks = input.len() as u64;
        let text = String::from_utf8_lossy(input);
        let reply = server.handle_line(&text);
        // Oracle: every reply line re-parses as a JSON object that
        // declares what it is.
        let parsed = json::parse(&reply.line).expect("every serve reply must be well-formed JSON");
        let declared = parsed
            .get("reply")
            .and_then(|v| v.as_str())
            .expect("every serve reply must carry a string `reply` field")
            .to_string();
        match reply.kind {
            ReplyKind::Error(fingerprint) => {
                assert_eq!(declared, "error", "typed kind and JSON reply disagree");
                assert_eq!(
                    parsed.get("error").and_then(|v| v.as_str()),
                    Some(fingerprint),
                    "error reply fingerprint must match its typed kind"
                );
                CaseReport::rejected(ticks, fingerprint)
            }
            ReplyKind::Report(_) => {
                assert_eq!(declared, "synth", "typed kind and JSON reply disagree");
                assert!(
                    parsed.get("report").is_some(),
                    "synth replies must embed the report object"
                );
                CaseReport::accepted(ticks, reply.line.len() as u64)
            }
            ReplyKind::Stats | ReplyKind::Status => {
                CaseReport::accepted(ticks, reply.line.len() as u64)
            }
        }
    })
}

/// Seed corpus of valid (and near-valid) request lines, so mutation
/// reaches past the JSON layer into the protocol and pattern layers.
pub fn serve_corpus() -> Vec<Vec<u8>> {
    [
        r#"{"op":"status"}"#,
        r#"{"op":"stats"}"#,
        r#"{"op":"synth","pattern":"procs 4\nphase\n  0 -> 1\n  2 -> 3\n"}"#,
        r#"{"op":"synth","pattern":"procs 2\nmsg 0 -> 1 start=0 finish=10\n","seed":7}"#,
        // No deadline_ms entry on purpose: deadlines make outcomes
        // timing-dependent, and fuzz runs must stay byte-deterministic.
        r#"{"op":"synth","pattern":"procs 2\nphase\n 0 -> 1\n","restarts":1,"max_degree":4}"#,
        r#"{"op":"synth","pattern":"procs 9\n"}"#,
    ]
    .iter()
    .map(|s| s.as_bytes().to_vec())
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_classifies_the_corpus() {
        let target = serve_request_target();
        for entry in serve_corpus() {
            let report = target.run(&entry);
            // Corpus entries are all well-formed frames; only the
            // over-limit pattern is rejected, and then by the pattern
            // layer, not the JSON layer.
            if let Some(fp) = report.rejected {
                assert_eq!(fp, "pattern-rejected");
            }
        }
    }

    #[test]
    fn garbage_is_rejected_not_crashed() {
        let target = serve_request_target();
        assert_eq!(target.run(b"").rejected, Some("bad-json"));
        assert_eq!(target.run(b"\xff\xfe{").rejected, Some("bad-json"));
        assert_eq!(target.run(br#"{"op":"nope"}"#).rejected, Some("unknown-op"));
        let deep = format!(r#"{{"op":{}1{}}}"#, "[".repeat(80), "]".repeat(80));
        assert_eq!(target.run(deep.as_bytes()).rejected, Some("bad-json"));
    }

    #[test]
    fn repeated_patterns_are_served_from_cache() {
        let target = serve_request_target();
        let req = br#"{"op":"synth","pattern":"procs 4\nphase\n  0 -> 1\n  2 -> 3\n"}"#;
        let cold = target.run(req);
        let warm = target.run(req);
        assert_eq!(cold.rejected, None);
        assert_eq!(warm.rejected, None);
    }
}
