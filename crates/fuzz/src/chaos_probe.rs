//! Fuzz target `chaos_plan`: the result cache's crash-safety contract
//! under arbitrary fault schedules.
//!
//! Each case decodes to a fault-plan seed (first 8 bytes) plus an op
//! script (remaining bytes, capped) driven against a
//! [`ResultCache`] whose disk tier is a [`ChaosDisk`] over an in-memory
//! store — so every filesystem touch may fail or tear, and a scripted
//! "crash + restart" op rebuilds the cache over whatever survived and
//! runs the recovery scan.
//!
//! The oracle is a shadow model: for every key, the set of values ever
//! inserted. The invariants:
//!
//! * no operation ever panics, whatever the faults (a panic is recorded
//!   as a crash by the runner);
//! * every value a lookup returns — from memory or from a
//!   recovered-after-crash disk tier — is one the shadow model inserted
//!   under that key: torn, foreign, or cross-key bytes are never served.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use nocsyn_model::sha256;
use nocsyn_serve::{ChaosDisk, DiskIo, FaultPlan, FaultPoint, MemDisk, ResultCache};

use crate::target::{CaseReport, FuzzTarget};

/// Distinct keys the script addresses (two bits of each op byte).
const KEYS: usize = 4;

/// Longest op script one case may run, so a fuzz iteration stays cheap.
const MAX_OPS: usize = 96;

fn fuzz_cache(store: &Arc<MemDisk>, plan: &Arc<Mutex<FaultPlan>>) -> ResultCache {
    let disk: Arc<dyn DiskIo> = Arc::new(ChaosDisk::new(store.clone(), plan.clone()));
    ResultCache::new(2)
        .with_dir(PathBuf::from("chaos-fuzz"))
        .with_io(disk)
}

/// Built-in target: `ResultCache` + `ChaosDisk` with the shadow-model
/// oracle.
pub fn chaos_plan_target() -> FuzzTarget {
    FuzzTarget::new("chaos_plan", |input| {
        let mut seed_bytes = [0u8; 8];
        for (i, b) in input.iter().take(8).enumerate() {
            seed_bytes[i] = *b;
        }
        let seed = u64::from_le_bytes(seed_bytes);
        let script: &[u8] = input.get(8..).unwrap_or(&[]);
        let script = &script[..script.len().min(MAX_OPS)];

        let store = Arc::new(MemDisk::new());
        // Hot probabilistic faults on top of whatever the script does,
        // so even short scripts see torn and failed I/O.
        let plan = Arc::new(Mutex::new(
            FaultPlan::seeded(seed)
                .with_probability(FaultPoint::DiskWrite, 0.30)
                .with_probability(FaultPoint::DiskRead, 0.25)
                .with_probability(FaultPoint::DiskRename, 0.20),
        ));
        let mut cache = fuzz_cache(&store, &plan);
        let mut shadow: Vec<BTreeSet<String>> = vec![BTreeSet::new(); KEYS];
        let mut served = 0u64;
        for (i, op) in script.iter().enumerate() {
            let k = usize::from(op >> 6) % KEYS;
            let key = sha256(&[k as u8]);
            match op % 4 {
                0 => {
                    // Insert a value unique to this script position; the
                    // certificate is any well-formed JSON.
                    let value = format!("{{\"v\":{i}}}");
                    let cert = format!("{{\"c\":{i}}}");
                    shadow[k].insert(value.clone());
                    cache.insert_with_cert(key, value, Some(cert));
                }
                1 => {
                    if let Some((value, _tier)) = cache.lookup(&key) {
                        assert!(
                            shadow[k].contains(&value),
                            "lookup served bytes never inserted under this key: {value}"
                        );
                        served += 1;
                    }
                }
                2 => {
                    let ok = cache.lookup_certified(&key, |cert| cert.starts_with('{'));
                    if let Some((value, _tier)) = ok {
                        assert!(
                            shadow[k].contains(&value),
                            "certified lookup served bytes never inserted: {value}"
                        );
                        served += 1;
                    }
                }
                _ => {
                    // Crash + restart: the in-memory tier dies, the plan
                    // revives, and a fresh cache recovers the surviving
                    // store. The shadow model survives — disk entries
                    // must still resolve to previously inserted values.
                    plan.lock()
                        .expect("fault plan lock never poisoned")
                        .revive();
                    cache = fuzz_cache(&store, &plan);
                    cache.recover();
                }
            }
        }
        CaseReport::accepted(script.len() as u64, served)
    })
}

/// Seed corpus: scripts that reach every op kind, crash-heavy mixes, and
/// degenerate frames (empty, seed-only).
pub fn chaos_corpus() -> Vec<Vec<u8>> {
    let with_seed = |seed: u64, ops: &[u8]| {
        let mut case = seed.to_le_bytes().to_vec();
        case.extend_from_slice(ops);
        case
    };
    vec![
        Vec::new(),
        with_seed(0, &[]),
        // Insert / lookup / certified-lookup over every key.
        with_seed(
            1,
            &[
                0x00, 0x01, 0x02, 0x40, 0x41, 0x42, 0x80, 0x81, 0x82, 0xC0, 0xC1, 0xC2,
            ],
        ),
        // Crash-heavy: insert, crash, lookup, repeat.
        with_seed(2, &[0x00, 0x03, 0x01, 0x40, 0x43, 0x41, 0x80, 0x83, 0x82]),
        // Lookups before any insert (cold misses under faults).
        with_seed(3, &[0x01, 0x02, 0x41, 0x42, 0x03, 0x01]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_accepts_the_corpus() {
        let target = chaos_plan_target();
        for entry in chaos_corpus() {
            let report = target.run(&entry);
            assert_eq!(report.rejected, None, "chaos_plan never rejects");
        }
    }

    #[test]
    fn long_random_scripts_hold_the_shadow_invariant() {
        let target = chaos_plan_target();
        // A deterministic pseudo-random script stressing all op kinds.
        let mut case = 0xDEAD_BEEFu64.to_le_bytes().to_vec();
        let mut x = 0x9E37_79B9u32;
        for _ in 0..MAX_OPS {
            x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            case.push((x >> 13) as u8);
        }
        let report = target.run(&case);
        assert_eq!(report.rejected, None);
        assert_eq!(report.ticks, MAX_OPS as u64);
    }
}
