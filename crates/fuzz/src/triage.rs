//! Panic capture and crash triage.
//!
//! Targets run under [`std::panic::catch_unwind`]; while a fuzz run is
//! active a process-wide silent panic hook suppresses the default
//! "thread panicked at ..." stderr spam (50 000 cases would otherwise
//! drown the terminal). The hook is reference-counted and restored when
//! the last concurrent run finishes, so surrounding test harnesses keep
//! their reporting.
//!
//! Crashes deduplicate by a *normalized fingerprint* of the panic
//! message: digit runs collapse to `#` so `index out of bounds: the len
//! is 4 but the index is 7` and `... len is 9 but the index is 12` are
//! one bug, not two.

use std::panic::{self, AssertUnwindSafe};
use std::sync::Mutex;

/// Serializes hook installation across concurrently fuzzing threads.
static HOOK_DEPTH: Mutex<usize> = Mutex::new(0);

/// RAII guard that silences the global panic hook for the duration of a
/// fuzz run (re-entrant across threads via a depth count).
#[derive(Debug)]
pub(crate) struct SilentPanicGuard;

impl SilentPanicGuard {
    pub(crate) fn install() -> Self {
        let mut depth = HOOK_DEPTH.lock().unwrap_or_else(|e| e.into_inner());
        if *depth == 0 {
            panic::set_hook(Box::new(|_| {}));
        }
        *depth += 1;
        SilentPanicGuard
    }
}

impl Drop for SilentPanicGuard {
    fn drop(&mut self) {
        let mut depth = HOOK_DEPTH.lock().unwrap_or_else(|e| e.into_inner());
        *depth -= 1;
        if *depth == 0 {
            let _ = panic::take_hook();
        }
    }
}

/// Runs `f`, converting a panic into its payload message.
pub(crate) fn run_caught<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    match panic::catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => Ok(v),
        Err(payload) => Err(panic_message(payload.as_ref())),
    }
}

/// Extracts the human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Collapses digit runs to `#` and truncates, so messages that differ
/// only in embedded values share one fingerprint.
pub fn normalize_fingerprint(message: &str) -> String {
    let mut out = String::with_capacity(message.len().min(160));
    let mut in_digits = false;
    for c in message.chars() {
        if c.is_ascii_digit() {
            if !in_digits {
                out.push('#');
                in_digits = true;
            }
        } else {
            in_digits = false;
            out.push(c);
        }
        if out.len() >= 160 {
            break;
        }
    }
    out
}

/// One deduplicated crash: the normalized fingerprint, the first seed
/// that triggered it (replayable via `NOCSYN_FUZZ_SEED`), an exemplar
/// message, and how many cases hit it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Crash {
    /// Normalized panic-message fingerprint (dedup key).
    pub fingerprint: String,
    /// Case seed of the first occurrence; `NOCSYN_FUZZ_SEED=<seed>`
    /// replays it deterministically.
    pub first_seed: u64,
    /// The first occurrence's verbatim panic message.
    pub message: String,
    /// Number of cases that collapsed onto this fingerprint.
    pub count: u64,
}

impl Crash {
    /// The one-line replay recipe, mirroring `nocsyn-check`'s contract.
    pub fn replay_line(&self, target: &str) -> String {
        format!(
            "NOCSYN_FUZZ_SEED={} nocsyn fuzz --target {target} --iters 1  # {}",
            self.first_seed, self.fingerprint
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_collapse_values() {
        let a = normalize_fingerprint("index out of bounds: the len is 4 but the index is 7");
        let b = normalize_fingerprint("index out of bounds: the len is 9 but the index is 1200");
        assert_eq!(a, b);
        assert!(a.contains("len is #"));
    }

    #[test]
    fn fingerprints_truncate_long_messages() {
        let long = "x".repeat(10_000);
        assert!(normalize_fingerprint(&long).len() <= 161);
    }

    #[test]
    fn run_caught_returns_values_and_messages() {
        assert_eq!(run_caught(|| 42), Ok(42));
        let _guard = SilentPanicGuard::install();
        let err = run_caught(|| -> u32 { panic!("boom {}", 7) }).unwrap_err();
        assert_eq!(err, "boom 7");
        let err = run_caught(|| -> u32 { panic!("static boom") }).unwrap_err();
        assert_eq!(err, "static boom");
    }

    #[test]
    fn replay_line_names_seed_and_target() {
        let c = Crash {
            fingerprint: "boom #".into(),
            first_seed: 99,
            message: "boom 7".into(),
            count: 3,
        };
        let line = c.replay_line("parse_schedule");
        assert!(line.starts_with("NOCSYN_FUZZ_SEED=99 "));
        assert!(line.contains("--target parse_schedule"));
    }
}
