//! Hermetic, deterministic fuzzing for nocsyn's ingestion boundary.
//!
//! This crate is the in-repo answer to "how do we know no input
//! byte-sequence panics the parsers, allocates unboundedly, or loops
//! forever?" — without pulling in an external fuzzer. Everything is
//! seeded from [`nocsyn_rng`], so a run is a pure function of
//! `(seed, iters, targets)`:
//!
//! * **Generators** ([`gen`]) produce inputs three ways per case — raw
//!   byte mutation of a corpus entry, token-level mutation of valid
//!   corpora, and grammar-aware construction of schedules/traces — so
//!   both the happy path and the error paths stay exercised.
//! * **Targets** ([`target`]) are named entry points (`parse_schedule`,
//!   `parse_trace`, the `route_edit_probe` differential oracle over the
//!   incremental Theorem-1 checker, plus whatever callers register,
//!   e.g. the CLI dispatch path) that report accepted/rejected/work-done
//!   per case.
//! * **Budgets** ([`CaseBudget`]) bound each case: input size is capped
//!   before the target runs, and the target's self-reported tick and
//!   output counts are checked after. A violation is recorded, not
//!   fatal — the run completes and the summary says what blew up.
//! * **Triage** ([`triage`]) catches panics, normalizes messages into
//!   value-free fingerprints, and deduplicates crashes.
//! * **Replay**: every crash and violation records the *case seed* that
//!   produced it. `NOCSYN_FUZZ_SEED=<n>` re-runs exactly that case,
//!   mirroring `nocsyn-check`'s `NOCSYN_CHECK_SEED` contract.
//!
//! The JSON summary ([`FuzzSummary::to_json`]) contains no wall-clock
//! data, so two runs with the same seed produce byte-identical output —
//! CI diffs it to prove determinism.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod certify_probe;
pub mod chaos_probe;
pub mod gen;
pub mod request_probe;
pub mod route_probe;
pub mod serve_probe;
pub mod target;
pub mod triage;

use std::collections::BTreeMap;

use nocsyn_model::json::JsonValue;
use nocsyn_rng::{splitmix64, Rng};

pub use target::{CaseReport, FuzzTarget, Registry};
pub use triage::{normalize_fingerprint, Crash};

/// Environment variable that replays a single fuzz case by its case
/// seed (printed in crash and violation reports).
pub const REPLAY_ENV: &str = "NOCSYN_FUZZ_SEED";

/// Per-case resource bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaseBudget {
    /// Generated inputs are truncated to this many bytes before the
    /// target ever sees them.
    pub max_input_bytes: usize,
    /// Upper bound on a target's self-reported work (the built-in
    /// targets count input bytes, so this only trips for custom
    /// targets that loop).
    pub max_ticks: u64,
    /// Upper bound on a target's self-reported output size. Catches
    /// amplification bugs: a 4 KiB input must not expand into millions
    /// of phases/messages.
    pub max_output_units: u64,
}

impl Default for CaseBudget {
    fn default() -> Self {
        CaseBudget {
            max_input_bytes: 4096,
            max_ticks: 1 << 20,
            max_output_units: 2_000_000,
        }
    }
}

/// A recorded budget violation (deduplicated by `what` per target).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetViolation {
    /// Which budget tripped: `"ticks"` or `"output_units"`.
    pub what: &'static str,
    /// Case seed of the first violation; replayable via
    /// [`REPLAY_ENV`].
    pub first_seed: u64,
    /// The offending value at first occurrence.
    pub value: u64,
    /// The budget it exceeded.
    pub limit: u64,
    /// Number of cases that tripped this budget.
    pub count: u64,
}

/// Configuration for one fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Cases per target.
    pub iters: u64,
    /// Base seed; case seeds derive from it.
    pub seed: u64,
    /// Per-case resource bounds.
    pub budget: CaseBudget,
    /// When set, run exactly one case whose case seed *is* this value
    /// (bypassing derivation) — the replay path.
    pub replay: Option<u64>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            iters: 1000,
            seed: 1,
            budget: CaseBudget::default(),
            replay: None,
        }
    }
}

impl FuzzConfig {
    /// Applies the [`REPLAY_ENV`] environment variable, if set and
    /// parseable, as the replay seed.
    pub fn from_env(mut self) -> Self {
        if let Ok(v) = std::env::var(REPLAY_ENV) {
            if let Ok(seed) = v.trim().parse::<u64>() {
                self.replay = Some(seed);
            }
        }
        self
    }
}

/// Derives the seed for `case` from `base_seed`.
///
/// This is the same derivation `nocsyn-check` uses, so the replay
/// contract is uniform across both harnesses: the printed seed alone
/// reconstructs the input.
pub fn case_seed(base_seed: u64, case: u64) -> u64 {
    let mut state = base_seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut state)
}

/// Outcome tallies for one target.
#[derive(Debug, Clone, PartialEq)]
pub struct TargetSummary {
    /// Target name.
    pub name: String,
    /// Cases executed.
    pub cases: u64,
    /// Cases the target accepted.
    pub accepted: u64,
    /// Rejections tallied by error-kind fingerprint (sorted by key).
    pub rejections: BTreeMap<&'static str, u64>,
    /// Deduplicated crashes, in first-seen order.
    pub crashes: Vec<Crash>,
    /// Deduplicated budget violations, in first-seen order.
    pub violations: Vec<BudgetViolation>,
}

impl TargetSummary {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("target", JsonValue::from(self.name.as_str())),
            ("cases", JsonValue::from(self.cases)),
            ("accepted", JsonValue::from(self.accepted)),
            (
                "rejections",
                JsonValue::object(
                    self.rejections
                        .iter()
                        .map(|(k, v)| (*k, JsonValue::from(*v))),
                ),
            ),
            (
                "crashes",
                JsonValue::array(self.crashes.iter().map(|c| {
                    JsonValue::object([
                        ("fingerprint", JsonValue::from(c.fingerprint.as_str())),
                        ("first_seed", JsonValue::from(c.first_seed)),
                        ("count", JsonValue::from(c.count)),
                        ("message", JsonValue::from(c.message.as_str())),
                    ])
                })),
            ),
            (
                "budget_violations",
                JsonValue::array(self.violations.iter().map(|v| {
                    JsonValue::object([
                        ("what", JsonValue::from(v.what)),
                        ("first_seed", JsonValue::from(v.first_seed)),
                        ("value", JsonValue::from(v.value)),
                        ("limit", JsonValue::from(v.limit)),
                        ("count", JsonValue::from(v.count)),
                    ])
                })),
            ),
        ])
    }
}

/// Whole-run summary across targets.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzSummary {
    /// Base seed of the run.
    pub seed: u64,
    /// Cases per target.
    pub iters: u64,
    /// Replay seed, when the run was a single-case replay.
    pub replay: Option<u64>,
    /// Per-target results, in execution (name) order.
    pub targets: Vec<TargetSummary>,
}

impl FuzzSummary {
    /// Total unique crashes across targets.
    pub fn unique_crashes(&self) -> usize {
        self.targets.iter().map(|t| t.crashes.len()).sum()
    }

    /// Total unique budget violations across targets.
    pub fn unique_violations(&self) -> usize {
        self.targets.iter().map(|t| t.violations.len()).sum()
    }

    /// `true` when no crashes and no budget violations were observed.
    pub fn clean(&self) -> bool {
        self.unique_crashes() == 0 && self.unique_violations() == 0
    }

    /// Deterministic JSON form: pure function of `(seed, iters,
    /// targets)`, no wall-clock anywhere. CI re-runs the same seed and
    /// byte-diffs this output.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("seed", JsonValue::from(self.seed)),
            ("iters", JsonValue::from(self.iters)),
            (
                "replay",
                match self.replay {
                    Some(s) => JsonValue::from(s),
                    None => JsonValue::Null,
                },
            ),
            ("unique_crashes", JsonValue::from(self.unique_crashes())),
            (
                "unique_budget_violations",
                JsonValue::from(self.unique_violations()),
            ),
            (
                "targets",
                JsonValue::array(self.targets.iter().map(TargetSummary::to_json)),
            ),
        ])
    }

    /// Human-readable report with one `NOCSYN_FUZZ_SEED=<n>` replay
    /// line per crash/violation.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "fuzz: seed={} iters={} targets={}\n",
            self.seed,
            self.iters,
            self.targets.len()
        ));
        for t in &self.targets {
            let rejected: u64 = t.rejections.values().sum();
            out.push_str(&format!(
                "  {}: {} cases, {} accepted, {} rejected, {} unique crashes, {} budget violations\n",
                t.name,
                t.cases,
                t.accepted,
                rejected,
                t.crashes.len(),
                t.violations.len()
            ));
            for c in &t.crashes {
                out.push_str(&format!(
                    "    crash x{}: {}\n      replay: {}\n",
                    c.count,
                    c.message,
                    c.replay_line(&t.name)
                ));
            }
            for v in &t.violations {
                out.push_str(&format!(
                    "    budget {} x{}: {} > {} (replay: {REPLAY_ENV}={} nocsyn fuzz --target {} --iters 1)\n",
                    v.what, v.count, v.value, v.limit, v.first_seed, t.name
                ));
            }
        }
        if self.clean() {
            out.push_str("  ok: zero crashes, zero budget violations\n");
        }
        out
    }
}

/// Runs `iters` cases (or one replay case) against a single target.
pub fn run_target(target: &FuzzTarget, corpus: &[Vec<u8>], config: &FuzzConfig) -> TargetSummary {
    let _hook = triage::SilentPanicGuard::install();
    let mut summary = TargetSummary {
        name: target.name().to_string(),
        cases: 0,
        accepted: 0,
        rejections: BTreeMap::new(),
        crashes: Vec::new(),
        violations: Vec::new(),
    };

    let cases: Box<dyn Iterator<Item = u64>> = match config.replay {
        Some(seed) => Box::new(std::iter::once(seed)),
        None => Box::new((0..config.iters).map(|c| case_seed(config.seed, c))),
    };

    for seed in cases {
        let mut rng = Rng::seed_from_u64(seed);
        let input = gen::generate_case(&mut rng, corpus, config.budget.max_input_bytes);
        summary.cases += 1;
        match triage::run_caught(|| target.run(&input)) {
            Ok(report) => {
                match report.rejected {
                    Some(fp) => *summary.rejections.entry(fp).or_insert(0) += 1,
                    None => summary.accepted += 1,
                }
                record_violation(
                    &mut summary.violations,
                    "ticks",
                    report.ticks,
                    config.budget.max_ticks,
                    seed,
                );
                record_violation(
                    &mut summary.violations,
                    "output_units",
                    report.output_units,
                    config.budget.max_output_units,
                    seed,
                );
            }
            Err(message) => {
                let fingerprint = normalize_fingerprint(&message);
                match summary
                    .crashes
                    .iter_mut()
                    .find(|c| c.fingerprint == fingerprint)
                {
                    Some(c) => c.count += 1,
                    None => summary.crashes.push(Crash {
                        fingerprint,
                        first_seed: seed,
                        message,
                        count: 1,
                    }),
                }
            }
        }
    }
    summary
}

fn record_violation(
    violations: &mut Vec<BudgetViolation>,
    what: &'static str,
    value: u64,
    limit: u64,
    seed: u64,
) {
    if value <= limit {
        return;
    }
    match violations.iter_mut().find(|v| v.what == what) {
        Some(v) => v.count += 1,
        None => violations.push(BudgetViolation {
            what,
            first_seed: seed,
            value,
            limit,
            count: 1,
        }),
    }
}

/// Runs every named target (or all registered targets for `"all"`)
/// against the corpus. Unknown names yield `Err` with the valid list.
pub fn run(
    registry: &Registry,
    target: &str,
    corpus: &[Vec<u8>],
    config: &FuzzConfig,
) -> Result<FuzzSummary, String> {
    let names: Vec<&'static str> = if target == "all" {
        registry.names()
    } else {
        match registry.names().iter().find(|n| **n == target) {
            Some(n) => vec![*n],
            None => {
                return Err(format!(
                    "unknown fuzz target `{target}` (known: all, {})",
                    registry.names().join(", ")
                ))
            }
        }
    };
    let targets = names
        .iter()
        .map(|name| {
            let t = registry.get(name).expect("name came from the registry");
            run_target(t, corpus, config)
        })
        .collect();
    Ok(FuzzSummary {
        seed: config.seed,
        iters: config.iters,
        replay: config.replay,
        targets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_seeds_match_the_check_derivation() {
        let mut state = 7u64 ^ 3u64.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        assert_eq!(case_seed(7, 3), splitmix64(&mut state));
    }

    #[test]
    fn run_rejects_unknown_targets_with_the_known_list() {
        let registry = Registry::with_builtin_targets();
        let err = run(&registry, "nope", &[], &FuzzConfig::default()).unwrap_err();
        assert!(err.contains("unknown fuzz target `nope`"));
        assert!(err.contains("parse_schedule"));
    }

    #[test]
    fn budget_violations_deduplicate_and_count() {
        let mut v = Vec::new();
        record_violation(&mut v, "ticks", 10, 5, 100);
        record_violation(&mut v, "ticks", 99, 5, 200);
        record_violation(&mut v, "output_units", 3, 5, 300);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].count, 2);
        assert_eq!(v[0].first_seed, 100);
    }

    #[test]
    fn replay_runs_exactly_one_case_with_the_given_seed() {
        let registry = Registry::with_builtin_targets();
        let corpus = gen::default_corpus();
        let config = FuzzConfig {
            replay: Some(42),
            ..FuzzConfig::default()
        };
        let summary = run(&registry, "parse_schedule", &corpus, &config).expect("known target");
        assert_eq!(summary.targets[0].cases, 1);
        assert_eq!(summary.replay, Some(42));
    }

    #[test]
    fn from_env_is_a_no_op_without_the_variable() {
        // NOCSYN_FUZZ_SEED is owned by the replay integration test in
        // tests/; here we only check the unset path doesn't set replay.
        if std::env::var(REPLAY_ENV).is_err() {
            assert_eq!(FuzzConfig::default().from_env().replay, None);
        }
    }
}
