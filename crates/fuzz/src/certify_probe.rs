//! Fuzz target `certify_input`: the independent certificate checker
//! under hostile certificate text.
//!
//! Each case is one raw byte string handed to
//! [`nocsyn_certify::check_certificate`] as the certificate, validated
//! against a fixed small pattern. The oracle is the checker's ingestion
//! contract:
//!
//! * checking never panics, whatever the bytes (a panic is recorded as a
//!   crash by the runner);
//! * every refusal is a typed [`Rejection`](nocsyn_certify::Rejection)
//!   whose fingerprint is a stable non-empty kebab-case string;
//! * anything the checker *accepts* must re-validate when checked again
//!   (acceptance is a pure function of the bytes).
//!
//! The parse limits are the small fuzz budgets, so a hostile certificate
//! can never make an accepted case expensive.

use std::collections::BTreeMap;

use nocsyn_certify::{check_certificate, CheckOptions};
use nocsyn_model::{CertWitness, Certificate, Flow, FlowPair, ParseLimits};

use crate::target::{CaseReport, FuzzTarget};

/// The fixed pattern every fuzzed certificate is validated against:
/// 4 processors, two 2-flow phases (two cliques, two obligations).
const CERTIFY_PATTERN: &str = "procs 4\nphase\n  0 -> 1\n  2 -> 3\nphase\n  1 -> 2\n  3 -> 0\n";

/// Parse limits for fuzzed certificates: big enough for real structure,
/// small enough that accepted cases stay cheap.
fn fuzz_limits() -> ParseLimits {
    ParseLimits::default()
        .with_max_procs(16)
        .with_max_messages(64)
        .with_max_input_bytes(2048)
}

/// Built-in target: `check_certificate` with the typed-rejection oracle.
pub fn certify_input_target() -> FuzzTarget {
    FuzzTarget::new("certify_input", |input| {
        let ticks = input.len() as u64;
        let text = String::from_utf8_lossy(input);
        let opts = CheckOptions::new().with_limits(fuzz_limits());
        match check_certificate(CERTIFY_PATTERN, &text, None, &opts) {
            Ok(summary) => {
                // Oracle: acceptance is deterministic, and the summary's
                // binding is the full recomputed digest.
                assert_eq!(summary.binding.len(), 64, "binding must be a sha-256 hex");
                let again = check_certificate(CERTIFY_PATTERN, &text, None, &opts)
                    .expect("an accepted certificate must re-validate");
                assert_eq!(summary, again, "certificate checking is not deterministic");
                CaseReport::accepted(ticks, (summary.n_routes + summary.n_obligations) as u64)
            }
            Err(rej) => {
                let fingerprint = rej.fingerprint();
                assert!(
                    !fingerprint.is_empty() && fingerprint.is_ascii(),
                    "rejection fingerprints must be stable ascii"
                );
                CaseReport::rejected(ticks, fingerprint)
            }
        }
    })
}

/// A genuinely valid certificate for [`CERTIFY_PATTERN`]: every flow on
/// its own private channel. Built from model structs only.
fn seed_certificate() -> Certificate {
    let flows = [(0usize, 1usize), (2, 3), (1, 2), (3, 0)];
    let mut routes = BTreeMap::new();
    let mut crossings: BTreeMap<String, Vec<Flow>> = BTreeMap::new();
    for (i, (s, d)) in flows.iter().enumerate() {
        let flow = Flow::from_indices(*s, *d);
        let label = format!("L{i}+");
        routes.insert(flow, vec![label.clone()]);
        crossings.entry(label).or_default().push(flow);
    }
    let schedule =
        nocsyn_model::parse_schedule(CERTIFY_PATTERN).expect("the fixed pattern is valid");
    let cliques = schedule
        .maximum_clique_set()
        .iter()
        .map(|c| c.iter().collect())
        .collect();
    let obligations = vec![
        FlowPair::new(Flow::from_indices(0, 1), Flow::from_indices(2, 3)),
        FlowPair::new(Flow::from_indices(1, 2), Flow::from_indices(3, 0)),
    ];
    Certificate {
        n_procs: 4,
        contention_free: true,
        cliques,
        obligations,
        routes,
        crossings,
        witnesses: Vec::new(),
        job: None,
        claimed_binding: None,
    }
}

/// Seed corpus: one valid certificate, one valid non-freedom proof, and
/// near-valid mutants, so mutation reaches past the JSON layer into the
/// binding and set-arithmetic layers.
pub fn certify_corpus() -> Vec<Vec<u8>> {
    let good = seed_certificate();
    let mut contended = seed_certificate();
    let a = Flow::from_indices(0, 1);
    let b = Flow::from_indices(2, 3);
    contended.routes.insert(a, vec!["SH".to_string()]);
    contended.routes.insert(b, vec!["SH".to_string()]);
    contended.crossings.clear();
    for (flow, chans) in &contended.routes {
        for ch in chans {
            contended
                .crossings
                .entry(ch.clone())
                .or_default()
                .push(*flow);
        }
    }
    contended.contention_free = false;
    contended.witnesses = vec![CertWitness {
        pair: FlowPair::new(a, b),
        shared: vec!["SH".to_string()],
    }];
    let mut bound = seed_certificate();
    bound.job = Some(nocsyn_model::sha256(b"fuzz-job").to_hex());

    let good_text = good.to_json();
    let tampered = good_text.replacen("\"contention_free\":true", "\"contention_free\":false", 1);
    let truncated = good_text[..good_text.len() / 2].to_string();
    vec![
        good_text.into_bytes(),
        contended.to_json().into_bytes(),
        bound.to_json().into_bytes(),
        tampered.into_bytes(),
        truncated.into_bytes(),
        br#"{"schema":"nocsyn-cert-v1"}"#.to_vec(),
        br#"{"schema":"nocsyn-cert-v9","n_procs":4}"#.to_vec(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_classifies_the_corpus() {
        let target = certify_input_target();
        let reports: Vec<CaseReport> = certify_corpus()
            .iter()
            .map(|entry| target.run(entry))
            .collect();
        // The valid certificate and the valid non-freedom proof are
        // accepted; every mutant is rejected with a typed fingerprint.
        assert_eq!(reports[0].rejected, None);
        assert_eq!(reports[1].rejected, None);
        assert_eq!(reports[2].rejected, None);
        assert_eq!(reports[3].rejected, Some("cert-binding-mismatch"));
        assert!(reports[4].rejected.is_some(), "truncated JSON must reject");
        assert_eq!(reports[5].rejected, Some("cert-missing-field"));
        assert_eq!(reports[6].rejected, Some("cert-schema-unsupported"));
    }

    #[test]
    fn garbage_is_rejected_not_crashed() {
        let target = certify_input_target();
        for bytes in [
            &b""[..],
            &b"\xff\xfe{"[..],
            &b"[1,2,3]"[..],
            &b"{\"schema\":17}"[..],
        ] {
            let report = target.run(bytes);
            assert!(report.rejected.is_some(), "{bytes:?} must be rejected");
        }
    }

    #[test]
    fn oversized_certificates_hit_the_input_budget() {
        let target = certify_input_target();
        let big = format!("{{\"pad\":\"{}\"}}", "x".repeat(4000));
        assert_eq!(target.run(big.as_bytes()).rejected, Some("limit-exceeded"));
    }
}
