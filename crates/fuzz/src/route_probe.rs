//! Fuzz target `route_edit_probe`: grammar-aware random route-edit
//! scripts differentially tested against the exact Theorem-1 checker.
//!
//! The input bytes are decoded as a script of structured edits over a
//! fixed 3×3 mesh — re-route a flow along its dimension-order path,
//! detour it around a link or a switch, or unroute it — applied in
//! lock-step to an [`IncrementalChecker`] and to a plain mirror table.
//! After **every** edit the incremental verdict is compared against a
//! from-scratch [`verify_contention_free`] recompute on the mirror; any
//! divergence panics, which the fuzz runner records as a crash with a
//! `NOCSYN_FUZZ_SEED` replay recipe.
//!
//! Unlike the parse targets this one has no reject path: every byte
//! string decodes to some script, so coverage is pure oracle pressure.

use std::collections::BTreeSet;

use nocsyn_model::{ContentionSet, Flow};
use nocsyn_topo::{
    regular, shortest_route_avoiding, verify_contention_free, IncrementalChecker, LinkId, Network,
    RouteTable, SwitchId,
};

use crate::target::{CaseReport, FuzzTarget};

/// Hard cap on decoded edits per case, so a budget-sized input cannot
/// turn one case into an unbounded differential soak.
const MAX_EDITS: usize = 128;

/// The fixed differential fixture: one network, its dimension-order
/// baseline table, the flow vocabulary, and a contention set mixing
/// cross pairs with self-pairs.
fn fixture() -> (Network, RouteTable, Vec<Flow>, ContentionSet) {
    let (net, baseline) = regular::mesh(3, 3).expect("3x3 mesh builds");
    let flows: Vec<Flow> = baseline.flows().collect();
    let mut contention = ContentionSet::new();
    // A spread of flow pairs (stride 7 walks the whole vocabulary) plus
    // two self-pairs, so the oracle sees both witness shapes.
    for k in 0..24 {
        contention.insert(flows[k], flows[(k * 7 + 1) % flows.len()]);
    }
    contention.insert(flows[0], flows[0]);
    contention.insert(flows[5], flows[5]);
    (net, baseline, flows, contention)
}

/// Decodes and applies one 3-byte edit to the checker and the mirror.
fn apply_edit(
    net: &Network,
    baseline: &RouteTable,
    flows: &[Flow],
    checker: &mut IncrementalChecker,
    mirror: &mut RouteTable,
    edit: &[u8],
) {
    let flow = flows[edit[0] as usize % flows.len()];
    let param = edit[2] as usize;
    let routed = match edit[1] % 4 {
        // Baseline dimension-order route.
        0 => Some(
            baseline
                .route(flow)
                .expect("baseline routes every flow")
                .clone(),
        ),
        // Detour around one link (removal when that disconnects).
        1 => {
            let avoid: BTreeSet<LinkId> = [LinkId(param % net.n_links())].into();
            shortest_route_avoiding(net, flow, &avoid, &BTreeSet::new()).ok()
        }
        // Unroute the flow.
        2 => None,
        // Detour around one switch (removal when that disconnects).
        _ => {
            let avoid: BTreeSet<SwitchId> = [SwitchId(param % net.n_switches())].into();
            shortest_route_avoiding(net, flow, &BTreeSet::new(), &avoid).ok()
        }
    };
    match routed {
        Some(route) => {
            checker.set_route(flow, route.clone());
            mirror.insert(flow, route);
        }
        None => {
            checker.clear_route(flow);
            mirror.remove(flow);
        }
    }
}

/// Builds the `route_edit_probe` target.
pub fn route_edit_probe_target() -> FuzzTarget {
    let (net, baseline, flows, contention) = fixture();
    FuzzTarget::new("route_edit_probe", move |input| {
        let ticks = input.len() as u64;
        let mut checker = IncrementalChecker::with_routes(&contention, &baseline);
        let mut mirror = baseline.clone();
        let mut edits = 0u64;
        for edit in input.chunks_exact(3).take(MAX_EDITS) {
            apply_edit(&net, &baseline, &flows, &mut checker, &mut mirror, edit);
            edits += 1;
            // The differential oracle: a divergence is a kernel bug and
            // panics, which the runner triages as a crash.
            let exact = verify_contention_free(&contention, &mirror);
            assert_eq!(
                checker.report(),
                exact,
                "incremental Theorem-1 state diverged from the exact checker"
            );
        }
        CaseReport::accepted(ticks, edits)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arbitrary_bytes_are_accepted_and_counted() {
        let t = route_edit_probe_target();
        let input: Vec<u8> = (0u16..600).map(|b| (b % 251) as u8).collect();
        let report = t.run(&input);
        assert_eq!(report.rejected, None);
        assert_eq!(report.ticks, input.len() as u64);
        assert_eq!(report.output_units, (input.len() / 3).min(MAX_EDITS) as u64);
    }

    #[test]
    fn empty_and_short_inputs_do_nothing() {
        let t = route_edit_probe_target();
        assert_eq!(t.run(&[]).output_units, 0);
        assert_eq!(t.run(&[1, 2]).output_units, 0);
    }

    #[test]
    fn edit_count_is_capped() {
        let t = route_edit_probe_target();
        let input = vec![7u8; 3 * (MAX_EDITS + 50)];
        assert_eq!(t.run(&input).output_units, MAX_EDITS as u64);
    }

    #[test]
    fn every_opcode_reaches_a_consistent_end_state() {
        // One edit per opcode on the same flow; the target's internal
        // oracle asserts per-step, so reaching the end is the test.
        let t = route_edit_probe_target();
        let script: Vec<u8> = [[3, 0, 0], [3, 1, 4], [3, 2, 0], [3, 3, 4]].concat();
        assert_eq!(t.run(&script).output_units, 4);
    }
}
