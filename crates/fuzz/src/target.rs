//! Fuzz targets: named entry points driven by the runner.
//!
//! A target consumes raw bytes and reports what happened. Three outcomes
//! exist per case:
//!
//! * **accepted** — the input parsed (or otherwise succeeded); the
//!   report carries how much output the target produced so the runner
//!   can enforce the output budget.
//! * **rejected** — the input was refused with a typed error; the report
//!   carries a stable error fingerprint so the runner can tally which
//!   rejection paths the generators actually exercise.
//! * **crash** — the target panicked. The runner catches the panic (see
//!   [`crate::triage`]); targets never need to.
//!
//! The built-in parse targets double as *round-trip oracles*: on
//! successful parse they re-render the value and re-parse it, panicking
//! on any mismatch. A silently lossy parse therefore counts as a crash,
//! not a pass.

use std::collections::BTreeMap;

use nocsyn_model::{format_schedule, format_trace, ParseOptions};

/// What one fuzz case did, as reported by the target itself.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CaseReport {
    /// Abstract work performed (the built-in targets count input bytes).
    /// The runner compares this against [`crate::CaseBudget::max_ticks`].
    pub ticks: u64,
    /// Abstract output size produced on success (phases + flows for
    /// schedules, messages for traces). Compared against
    /// [`crate::CaseBudget::max_output_units`].
    pub output_units: u64,
    /// `Some(fingerprint)` when the input was rejected with a typed
    /// error; `None` when it was accepted.
    pub rejected: Option<&'static str>,
}

impl CaseReport {
    /// An accepted case that produced `output_units` of output.
    pub fn accepted(ticks: u64, output_units: u64) -> Self {
        CaseReport {
            ticks,
            output_units,
            rejected: None,
        }
    }

    /// A rejected case with a stable error-kind fingerprint.
    pub fn rejected(ticks: u64, fingerprint: &'static str) -> Self {
        CaseReport {
            ticks,
            output_units: 0,
            rejected: Some(fingerprint),
        }
    }
}

/// The function a target runs per case.
pub type TargetFn = Box<dyn Fn(&[u8]) -> CaseReport + Send + Sync>;

/// A named fuzz target.
pub struct FuzzTarget {
    name: &'static str,
    run: TargetFn,
}

impl std::fmt::Debug for FuzzTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FuzzTarget")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

impl FuzzTarget {
    /// Creates a target from a name and a case function.
    pub fn new(
        name: &'static str,
        run: impl Fn(&[u8]) -> CaseReport + Send + Sync + 'static,
    ) -> Self {
        FuzzTarget {
            name,
            run: Box::new(run),
        }
    }

    /// The target's registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Runs one case. Callers wanting panic capture go through the
    /// runner, which wraps this in `catch_unwind`.
    pub fn run(&self, input: &[u8]) -> CaseReport {
        (self.run)(input)
    }
}

/// Orderered collection of targets, looked up by name.
#[derive(Debug, Default)]
pub struct Registry {
    targets: BTreeMap<&'static str, FuzzTarget>,
}

impl Registry {
    /// An empty registry (callers register their own targets).
    pub fn new() -> Self {
        Registry::default()
    }

    /// A registry preloaded with the built-in targets: the model
    /// parsers (`parse_schedule`, `parse_trace`), the incremental
    /// Theorem-1 differential probe (`route_edit_probe`), the serve
    /// daemon's line protocol (`serve_request`), the certificate
    /// checker (`certify_input`), the crash-safety shadow-model
    /// probe over the fault-injected result cache (`chaos_plan`), and
    /// the synthesis-request builder (`synthesis_request`).
    pub fn with_builtin_targets() -> Self {
        let mut r = Registry::new();
        r.register(parse_schedule_target());
        r.register(parse_trace_target());
        r.register(crate::route_probe::route_edit_probe_target());
        r.register(crate::serve_probe::serve_request_target());
        r.register(crate::certify_probe::certify_input_target());
        r.register(crate::chaos_probe::chaos_plan_target());
        r.register(crate::request_probe::synthesis_request_target());
        r
    }

    /// Adds (or replaces) a target.
    pub fn register(&mut self, target: FuzzTarget) {
        self.targets.insert(target.name(), target);
    }

    /// Registered target names, sorted.
    pub fn names(&self) -> Vec<&'static str> {
        self.targets.keys().copied().collect()
    }

    /// Looks up a target by name.
    pub fn get(&self, name: &str) -> Option<&FuzzTarget> {
        self.targets.get(name)
    }
}

/// Built-in target: `nocsyn_model::parse_schedule` with the round-trip
/// oracle render -> parse -> render.
pub fn parse_schedule_target() -> FuzzTarget {
    FuzzTarget::new("parse_schedule", |input| {
        let ticks = input.len() as u64;
        let text = String::from_utf8_lossy(input);
        let opts = ParseOptions::new();
        match opts.parse_schedule(&text) {
            Ok(schedule) => {
                let phases = schedule.len() as u64;
                let flows: u64 = schedule.iter().map(|p| p.len() as u64).sum();
                // Round-trip oracle: the rendered form must re-parse to
                // an identical rendering. A mismatch is a parser bug and
                // panics, which the runner records as a crash.
                let rendered = format_schedule(&schedule);
                let reparsed = opts
                    .parse_schedule(&rendered)
                    .expect("rendered schedule must re-parse");
                assert_eq!(
                    rendered,
                    format_schedule(&reparsed),
                    "schedule render/parse round-trip is not a fixpoint"
                );
                CaseReport::accepted(ticks, phases + flows)
            }
            Err(err) => CaseReport::rejected(ticks, err.kind.fingerprint()),
        }
    })
}

/// Built-in target: `nocsyn_model::parse_trace` with the round-trip
/// oracle render -> parse -> render.
pub fn parse_trace_target() -> FuzzTarget {
    FuzzTarget::new("parse_trace", |input| {
        let ticks = input.len() as u64;
        let text = String::from_utf8_lossy(input);
        let opts = ParseOptions::new();
        match opts.parse_trace(&text) {
            Ok(trace) => {
                let rendered = format_trace(&trace);
                let reparsed = opts
                    .parse_trace(&rendered)
                    .expect("rendered trace must re-parse");
                assert_eq!(
                    rendered,
                    format_trace(&reparsed),
                    "trace render/parse round-trip is not a fixpoint"
                );
                CaseReport::accepted(ticks, trace.len() as u64)
            }
            Err(err) => CaseReport::rejected(ticks, err.kind.fingerprint()),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registry_has_sorted_targets() {
        let r = Registry::with_builtin_targets();
        assert_eq!(
            r.names(),
            vec![
                "certify_input",
                "chaos_plan",
                "parse_schedule",
                "parse_trace",
                "route_edit_probe",
                "serve_request",
                "synthesis_request"
            ]
        );
        assert!(r.get("parse_schedule").is_some());
        assert!(r.get("route_edit_probe").is_some());
        assert!(r.get("nope").is_none());
    }

    #[test]
    fn schedule_target_accepts_valid_input() {
        let r = Registry::with_builtin_targets();
        let t = r.get("parse_schedule").expect("registered");
        let input = b"procs 4\nphase bytes=64\n0 -> 1\n2 -> 3\n";
        let report = t.run(input);
        assert_eq!(report.rejected, None);
        assert_eq!(report.ticks, input.len() as u64);
        assert_eq!(report.output_units, 1 + 2);
    }

    #[test]
    fn schedule_target_rejects_with_stable_fingerprint() {
        let r = Registry::with_builtin_targets();
        let t = r.get("parse_schedule").expect("registered");
        assert_eq!(t.run(b"# nothing here\n").rejected, Some("missing-procs"));
        assert_eq!(t.run(b"0 -> 1\n").rejected, Some("flow-outside-phase"));
        assert_eq!(
            t.run(b"procs 4\nprocs 4\n").rejected,
            Some("duplicate-procs")
        );
    }

    #[test]
    fn trace_target_round_trips_valid_input() {
        let r = Registry::with_builtin_targets();
        let t = r.get("parse_trace").expect("registered");
        let input = b"procs 3\nmsg 0 -> 1 start=0 finish=10\nmsg 1 -> 2 start=5 finish=9\n";
        let report = t.run(input);
        assert_eq!(report.rejected, None);
        assert_eq!(report.output_units, 2);
    }

    #[test]
    fn custom_targets_can_be_registered() {
        let mut r = Registry::new();
        r.register(FuzzTarget::new("always_ok", |input| {
            CaseReport::accepted(input.len() as u64, 0)
        }));
        assert_eq!(r.names(), vec!["always_ok"]);
        assert_eq!(r.get("always_ok").expect("registered").run(b"xy").ticks, 2);
    }
}
