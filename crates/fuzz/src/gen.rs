//! Deterministic fuzz-input generators.
//!
//! Three complementary strategies, all driven by a single seeded
//! [`Rng`] so a case seed fully determines the input:
//!
//! * **raw byte mutation** — bit flips, byte stomps, span
//!   deletion/duplication and cross-entry splicing over a corpus entry,
//!   or fresh random bytes; explores the lexical layer (invalid UTF-8,
//!   truncation, garbage).
//! * **token-level mutation** — a valid corpus entry is tokenized and
//!   individual tokens are replaced with boundary numbers, grammar
//!   keywords or each other; explores the syntactic layer with inputs
//!   that are *almost* valid.
//! * **grammar-aware generation** — schedules and traces are produced
//!   from the actual grammar with occasional rule violations injected;
//!   explores deep semantic states (limits, model errors, `repeat`
//!   expansion) that random bytes essentially never reach.

use nocsyn_rng::Rng;

/// Numbers that sit on implementation boundaries: zero, one, `u32`/`u64`
/// edges, values one past them (which fail `parse::<u64>`), and a
/// negative.
pub const INTERESTING_NUMBERS: &[&str] = &[
    "0",
    "1",
    "2",
    "15",
    "65535",
    "65536",
    "4294967295",
    "4294967296",
    "18446744073709551615",
    "18446744073709551616",
    "99999999999",
    "99999999999999999999",
    "-1",
];

/// Grammar keywords and separators of the schedule/trace formats.
pub const KEYWORDS: &[&str] = &[
    "procs", "phase", "repeat", "msg", "->", "bytes=", "compute=", "start=", "finish=", "#",
];

/// The built-in seed corpus: small valid schedules and traces covering
/// every directive, plus edge-of-grammar entries (comments, CRLF, BOM,
/// empty phase). Callers may extend it via `--corpus-dir`.
pub fn default_corpus() -> Vec<Vec<u8>> {
    [
        // Canonical schedule with everything on.
        "# sample\nprocs 4\n\nphase bytes=128 compute=50\n  0 -> 1\n  2 -> 3\n\nphase\n  1->0\nrepeat 2\n",
        // Minimal schedule.
        "procs 2\nphase\n 0 -> 1\n",
        // Empty (computation-only) schedule.
        "procs 3\n",
        // CRLF line endings and a BOM.
        "\u{feff}procs 4\r\nphase bytes=64\r\n  0 -> 1\r\n",
        // Canonical trace.
        "procs 4\nmsg 0 -> 1 start=0 finish=100 bytes=64\nmsg 2 -> 3 start=50 finish=150\n",
        // Trace with defaulted bytes and touching intervals.
        "procs 2\nmsg 0 -> 1 start=0 finish=10\nmsg 1 -> 0 start=10 finish=20\n",
    ]
    .iter()
    .map(|s| s.as_bytes().to_vec())
    .collect()
}

/// Generates one fuzz input from the case rng: picks one of the three
/// strategies, then caps the result at `max_len` bytes (the generators
/// aim below the cap; the truncation is a hard guarantee).
pub fn generate_case(rng: &mut Rng, corpus: &[Vec<u8>], max_len: usize) -> Vec<u8> {
    let mut out = match rng.gen_range(0u32..4) {
        0 => byte_mutation(rng, corpus, max_len),
        1 => token_mutation(rng, corpus),
        2 => grammar_schedule(rng),
        _ => grammar_trace(rng),
    };
    out.truncate(max_len);
    out
}

// -----------------------------------------------------------------
// Strategy 1: raw byte mutation
// -----------------------------------------------------------------

fn random_bytes(rng: &mut Rng, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(0..max_len.clamp(1, 256));
    (0..len).map(|_| rng.gen_range(0u32..256) as u8).collect()
}

/// Byte-level mutation of a corpus entry (or fresh random bytes when the
/// corpus is empty / the dice say so).
pub fn byte_mutation(rng: &mut Rng, corpus: &[Vec<u8>], max_len: usize) -> Vec<u8> {
    let Some(base) = rng.choose(corpus) else {
        return random_bytes(rng, max_len);
    };
    if rng.gen_bool(0.15) {
        return random_bytes(rng, max_len);
    }
    let mut v = base.clone();
    let rounds = rng.gen_range(1usize..=4);
    for _ in 0..rounds {
        if v.is_empty() {
            v = random_bytes(rng, max_len);
            continue;
        }
        match rng.gen_range(0u32..6) {
            // Flip one bit.
            0 => {
                let i = rng.gen_range(0..v.len());
                v[i] ^= 1 << rng.gen_range(0u32..8);
            }
            // Stomp one byte.
            1 => {
                let i = rng.gen_range(0..v.len());
                v[i] = rng.gen_range(0u32..256) as u8;
            }
            // Delete a span.
            2 => {
                let start = rng.gen_range(0..v.len());
                let len = rng.gen_range(1..=(v.len() - start).min(16));
                v.drain(start..start + len);
            }
            // Duplicate a span.
            3 => {
                let start = rng.gen_range(0..v.len());
                let len = rng.gen_range(1..=(v.len() - start).min(16));
                let span: Vec<u8> = v[start..start + len].to_vec();
                let at = rng.gen_range(0..=v.len());
                v.splice(at..at, span);
            }
            // Truncate.
            4 => {
                let keep = rng.gen_range(0..=v.len());
                v.truncate(keep);
            }
            // Splice with another corpus entry.
            _ => {
                if let Some(other) = rng.choose(corpus) {
                    let cut_a = rng.gen_range(0..=v.len());
                    let cut_b = rng.gen_range(0..=other.len());
                    v.truncate(cut_a);
                    v.extend_from_slice(&other[cut_b..]);
                }
            }
        }
    }
    v
}

// -----------------------------------------------------------------
// Strategy 2: token-level mutation
// -----------------------------------------------------------------

/// Token-level mutation: tokenize a corpus entry line by line and swap,
/// drop, duplicate or replace whitespace-separated tokens, preserving
/// the line structure the parsers key on.
pub fn token_mutation(rng: &mut Rng, corpus: &[Vec<u8>]) -> Vec<u8> {
    let Some(base) = rng.choose(corpus) else {
        return Vec::new();
    };
    let text = String::from_utf8_lossy(base);
    let mut lines: Vec<Vec<String>> = text
        .lines()
        .map(|l| l.split_whitespace().map(str::to_string).collect())
        .collect();
    if lines.is_empty() {
        lines.push(Vec::new());
    }
    let rounds = rng.gen_range(1usize..=3);
    for _ in 0..rounds {
        let li = rng.gen_range(0..lines.len());
        let line_count = lines.len();
        let line = &mut lines[li];
        match rng.gen_range(0u32..6) {
            // Replace a token with a boundary number.
            0 => {
                if !line.is_empty() {
                    let ti = rng.gen_range(0..line.len());
                    line[ti] = (*rng.choose(INTERESTING_NUMBERS).unwrap_or(&"0")).to_string();
                }
            }
            // Replace a token with a grammar keyword.
            1 => {
                if !line.is_empty() {
                    let ti = rng.gen_range(0..line.len());
                    line[ti] = (*rng.choose(KEYWORDS).unwrap_or(&"procs")).to_string();
                }
            }
            // Delete a token.
            2 => {
                if !line.is_empty() {
                    let ti = rng.gen_range(0..line.len());
                    line.remove(ti);
                }
            }
            // Duplicate a token in place.
            3 => {
                if !line.is_empty() {
                    let ti = rng.gen_range(0..line.len());
                    let t = line[ti].clone();
                    line.insert(ti, t);
                }
            }
            // Swap two tokens.
            4 => {
                if line.len() >= 2 {
                    let a = rng.gen_range(0..line.len());
                    let b = rng.gen_range(0..line.len());
                    line.swap(a, b);
                }
            }
            // Duplicate or drop a whole line.
            _ => {
                if rng.gen_bool(0.5) {
                    let l = lines[li].clone();
                    lines.insert(li, l);
                } else if line_count > 1 {
                    lines.remove(li);
                }
            }
        }
    }
    let mut out = String::new();
    for line in &lines {
        out.push_str(&line.join(" "));
        out.push('\n');
    }
    out.into_bytes()
}

// -----------------------------------------------------------------
// Strategy 3: grammar-aware generation
// -----------------------------------------------------------------

fn number(rng: &mut Rng, small_hi: u64) -> String {
    if rng.gen_bool(0.15) {
        (*rng.choose(INTERESTING_NUMBERS).unwrap_or(&"0")).to_string()
    } else {
        rng.gen_range(0..=small_hi).to_string()
    }
}

fn newline(rng: &mut Rng) -> &'static str {
    if rng.gen_bool(0.1) {
        "\r\n"
    } else {
        "\n"
    }
}

fn maybe_comment(rng: &mut Rng, out: &mut String) {
    if rng.gen_bool(0.15) {
        out.push_str(" # c");
    }
}

/// Grammar-aware schedule text: structurally plausible `procs` / `phase`
/// / flow / `repeat` programs with occasional deliberate violations
/// (missing header, out-of-range flows, huge counts, garbage lines).
pub fn grammar_schedule(rng: &mut Rng) -> Vec<u8> {
    let mut out = String::new();
    if rng.gen_bool(0.05) {
        out.push('\u{feff}');
    }
    let n = 1 + rng.gen_range(0u64..16);
    if rng.gen_bool(0.9) {
        out.push_str("procs ");
        out.push_str(&number(rng, 16));
        maybe_comment(rng, &mut out);
        out.push_str(newline(rng));
    }
    let phases = rng.gen_range(0usize..5);
    for _ in 0..phases {
        out.push_str("phase");
        if rng.gen_bool(0.5) {
            out.push_str(" bytes=");
            out.push_str(&number(rng, 8192));
        }
        if rng.gen_bool(0.4) {
            out.push_str(" compute=");
            out.push_str(&number(rng, 10_000));
        }
        maybe_comment(rng, &mut out);
        out.push_str(newline(rng));
        let flows = rng.gen_range(0usize..5);
        for _ in 0..flows {
            let src = rng.gen_range(0..n + 2); // may exceed procs
            let dst = rng.gen_range(0..n + 2); // may self-loop
            out.push_str("  ");
            out.push_str(&src.to_string());
            out.push_str(if rng.gen_bool(0.8) { " -> " } else { "->" });
            out.push_str(&dst.to_string());
            maybe_comment(rng, &mut out);
            out.push_str(newline(rng));
        }
        if rng.gen_bool(0.08) {
            out.push_str("garbage line here");
            out.push_str(newline(rng));
        }
    }
    if rng.gen_bool(0.3) {
        out.push_str("repeat ");
        out.push_str(&number(rng, 8));
        out.push_str(newline(rng));
    }
    out.into_bytes()
}

/// Grammar-aware trace text: `procs` + `msg` lines with boundary times,
/// missing/duplicated options and occasional violations.
pub fn grammar_trace(rng: &mut Rng) -> Vec<u8> {
    let mut out = String::new();
    let n = 1 + rng.gen_range(0u64..16);
    if rng.gen_bool(0.9) {
        out.push_str("procs ");
        out.push_str(&number(rng, 16));
        out.push_str(newline(rng));
    }
    let msgs = rng.gen_range(0usize..8);
    for _ in 0..msgs {
        let src = rng.gen_range(0..n + 2);
        let dst = rng.gen_range(0..n + 2);
        out.push_str("msg ");
        out.push_str(&src.to_string());
        out.push_str(" -> ");
        out.push_str(&dst.to_string());
        if rng.gen_bool(0.95) {
            out.push_str(" start=");
            out.push_str(&number(rng, 1_000));
        }
        if rng.gen_bool(0.95) {
            out.push_str(" finish=");
            out.push_str(&number(rng, 1_000));
        }
        if rng.gen_bool(0.4) {
            out.push_str(" bytes=");
            out.push_str(&number(rng, 8192));
        }
        maybe_comment(rng, &mut out);
        out.push_str(newline(rng));
    }
    out.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let corpus = default_corpus();
        for seed in 0..50u64 {
            let mut a = Rng::seed_from_u64(seed);
            let mut b = Rng::seed_from_u64(seed);
            assert_eq!(
                generate_case(&mut a, &corpus, 4096),
                generate_case(&mut b, &corpus, 4096)
            );
        }
    }

    #[test]
    fn generation_respects_the_length_cap() {
        let corpus = default_corpus();
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..500 {
            assert!(generate_case(&mut rng, &corpus, 128).len() <= 128);
        }
    }

    #[test]
    fn empty_corpus_still_generates() {
        let mut rng = Rng::seed_from_u64(11);
        for _ in 0..100 {
            // Must not panic; byte/token strategies fall back gracefully.
            let _ = generate_case(&mut rng, &[], 512);
        }
    }

    #[test]
    fn grammar_schedules_often_parse() {
        // The grammar generator must reach deep parser states: a healthy
        // fraction of its outputs are accepted by the real parser.
        let mut rng = Rng::seed_from_u64(3);
        let ok = (0..200)
            .filter(|_| {
                let bytes = grammar_schedule(&mut rng);
                let text = String::from_utf8_lossy(&bytes);
                nocsyn_model::parse_schedule(&text).is_ok()
            })
            .count();
        assert!(ok > 20, "only {ok}/200 grammar schedules parsed");
    }

    #[test]
    fn grammar_traces_often_parse() {
        let mut rng = Rng::seed_from_u64(4);
        let ok = (0..200)
            .filter(|_| {
                let bytes = grammar_trace(&mut rng);
                let text = String::from_utf8_lossy(&bytes);
                nocsyn_model::parse_trace(&text).is_ok()
            })
            .count();
        assert!(ok > 20, "only {ok}/200 grammar traces parsed");
    }

    #[test]
    fn default_corpus_entries_are_valid() {
        for entry in default_corpus() {
            let text = String::from_utf8(entry).expect("corpus is UTF-8");
            let is_trace = text.contains("msg ");
            if is_trace {
                nocsyn_model::parse_trace(&text).expect("corpus trace parses");
            } else {
                nocsyn_model::parse_schedule(&text).expect("corpus schedule parses");
            }
        }
    }
}
