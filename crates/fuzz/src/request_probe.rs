//! Fuzz target `synthesis_request`: the request builder under arbitrary
//! decoded knobs.
//!
//! Each case decodes the input bytes into a small pattern plus every
//! request-level knob (seed, restarts, max degree, mode, cluster count)
//! and drives [`SynthesisRequest::builder`] with them. The oracle is the
//! builder's public contract:
//!
//! * building never panics, whatever the knobs (a panic is recorded as a
//!   crash by the runner);
//! * `restarts(0)` is rejected with the typed `zero-restarts`
//!   fingerprint — never silently clamped;
//! * `Decomposed { clusters: Some(0) }` is rejected with
//!   `zero-clusters` (after the restart check, matching `build`'s
//!   documented precedence);
//! * an accepted request's [`canonical_form`] digest is invariant under
//!   the *order* the builder setters were applied in — the cache-key
//!   property the serve daemon relies on.
//!
//! [`canonical_form`]: SynthesisRequest::canonical_form

use nocsyn_model::{Flow, Phase, PhaseSchedule};
use nocsyn_synth::{AppPattern, RequestBuildError, SynthesisMode, SynthesisRequest};

use crate::target::{CaseReport, FuzzTarget};

/// Decoded knobs for one fuzz case.
struct Knobs {
    pattern: AppPattern,
    seed: u64,
    restarts: usize,
    max_degree: usize,
    mode: SynthesisMode,
}

/// Decodes the raw input into builder knobs. Total: every byte string
/// decodes to *some* knob set, so mutation always reaches the builder.
fn decode(input: &[u8]) -> Knobs {
    let byte = |i: usize| input.get(i).copied().unwrap_or(0);
    let n_procs = 2 + (byte(0) % 8) as usize;
    let mut sched = PhaseSchedule::new(n_procs);
    let mut flows = Vec::new();
    for pair in input.get(8..).unwrap_or(&[]).chunks(2).take(8) {
        let src = (pair[0] as usize) % n_procs;
        let dst = (pair.get(1).copied().unwrap_or(1) as usize) % n_procs;
        if src != dst {
            flows.push(Flow::from_indices(src, dst));
        }
    }
    flows.sort_unstable();
    flows.dedup();
    if let Ok(phase) = Phase::from_flows(flows) {
        let _ = sched.push(phase);
    }
    let seed = u64::from_le_bytes([
        byte(1),
        byte(2),
        byte(3),
        byte(4),
        byte(5),
        byte(6),
        byte(7),
        0,
    ]);
    let restarts = (byte(2) % 5) as usize; // 0 hit ~20% of cases
    let max_degree = 2 + (byte(3) % 8) as usize;
    let clusters = (byte(5) % 4) as usize; // 0 hit ~25% of decomposed cases
    let mode = match byte(4) % 3 {
        0 => SynthesisMode::Flat,
        1 => SynthesisMode::Decomposed { clusters: None },
        _ => SynthesisMode::Decomposed {
            clusters: Some(clusters),
        },
    };
    Knobs {
        pattern: AppPattern::from_schedule(&sched),
        seed,
        restarts,
        max_degree,
        mode,
    }
}

/// Builds the request applying the setters in one of two orders chosen
/// by `reversed` — the canonical form must not notice the difference.
fn build(knobs: &Knobs, reversed: bool) -> Result<SynthesisRequest, RequestBuildError> {
    let builder = SynthesisRequest::builder(knobs.pattern.clone());
    let builder = if reversed {
        builder
            .mode(knobs.mode)
            .max_degree(knobs.max_degree)
            .restarts(knobs.restarts)
            .seed(knobs.seed)
    } else {
        builder
            .seed(knobs.seed)
            .restarts(knobs.restarts)
            .max_degree(knobs.max_degree)
            .mode(knobs.mode)
    };
    builder.build()
}

/// Built-in target: `SynthesisRequestBuilder::build` with the typed
/// rejection and order-invariance oracles.
pub fn synthesis_request_target() -> FuzzTarget {
    FuzzTarget::new("synthesis_request", |input| {
        let ticks = input.len() as u64;
        let knobs = decode(input);
        match build(&knobs, false) {
            Err(err) => {
                // Typed rejections, in build()'s documented precedence.
                let expected = if knobs.restarts == 0 {
                    RequestBuildError::ZeroRestarts
                } else {
                    RequestBuildError::ZeroClusters
                };
                assert_eq!(err, expected, "unexpected rejection for decoded knobs");
                if knobs.restarts == 0 {
                    assert_eq!(err.fingerprint(), "zero-restarts");
                } else {
                    assert_eq!(knobs.mode, SynthesisMode::Decomposed { clusters: Some(0) });
                    assert_eq!(err.fingerprint(), "zero-clusters");
                }
                CaseReport::rejected(ticks, err.fingerprint())
            }
            Ok(request) => {
                assert_ne!(knobs.restarts, 0, "restarts=0 must never build");
                // Setter order must not leak into the cache key.
                let reordered = build(&knobs, true).expect("same knobs, same verdict");
                assert_eq!(
                    request.canonical_form().digest(),
                    reordered.canonical_form().digest(),
                    "canonical form must be setter-order invariant"
                );
                assert_eq!(request.config().restarts(), knobs.restarts);
                assert_eq!(request.config().max_degree(), knobs.max_degree);
                assert_eq!(request.mode(), knobs.mode);
                CaseReport::accepted(ticks, request.canonical_form().len() as u64)
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_classifies_decoded_corners() {
        let target = synthesis_request_target();
        // byte(2) drives restarts (mod 5); zero hits the typed rejection.
        let zero_restarts = [0u8, 0, 0, 0, 0, 0, 0, 0];
        assert_eq!(target.run(&zero_restarts).rejected, Some("zero-restarts"));
        // restarts nonzero, mode byte 2 => explicit clusters, byte(5)=0.
        let zero_clusters = [0u8, 0, 1, 0, 2, 0, 0, 0];
        assert_eq!(target.run(&zero_clusters).rejected, Some("zero-clusters"));
        // restarts nonzero, flat mode: accepted.
        let flat = [0u8, 0, 1, 0, 0, 0, 0, 0, 3, 4, 5, 6];
        assert_eq!(target.run(&flat).rejected, None);
        // Arbitrary junk never panics.
        for len in 0..32 {
            let junk: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            target.run(&junk);
        }
    }
}
