//! Engine scaling harness: wall-clock of the batched restart portfolio
//! over the paper's 16-node workloads at 1/2/4/8 workers.
//!
//! Usage: `cargo bench -p nocsyn-bench --bench engine [-- --json]`.
//!
//! Every worker count runs the *same* batch — all five paper benchmarks,
//! each an 8-restart portfolio — and must select bit-identical results
//! (the harness asserts the selected link/switch totals match the
//! 1-worker baseline). The `--json` flag emits one row per worker count
//! with the measured wall time and speedup, plus the machine's hardware
//! thread count so the numbers are interpretable: speedup saturates at
//! `min(workers, hardware_threads)`.

use std::time::Instant;

use nocsyn_engine::{Engine, Job, JobStatus};
use nocsyn_model::json::JsonValue;
use nocsyn_synth::{AppPattern, SynthesisConfig, SynthesisRequest};
use nocsyn_workloads::{Benchmark, WorkloadParams};

const RESTARTS: usize = 8;

fn paper_jobs() -> Vec<Job> {
    Benchmark::ALL
        .into_iter()
        .map(|benchmark| {
            let sched = benchmark
                .schedule(16, &WorkloadParams::paper_default(benchmark))
                .expect("16 is valid for all benchmarks");
            let request = SynthesisRequest::builder(AppPattern::from_schedule(&sched))
                .config(SynthesisConfig::new().with_seed(0xE9C1 ^ (benchmark as u64)))
                .restarts(RESTARTS)
                .build()
                .expect("a nonzero restart count builds");
            Job::new(format!("{}16", benchmark.name()), request)
        })
        .collect()
}

/// Selected (links, switches) per job — the portfolio fingerprint that
/// must not move with the worker count.
fn fingerprint(outcomes: &[nocsyn_engine::JobOutcome]) -> Vec<(usize, usize)> {
    outcomes
        .iter()
        .map(|o| {
            assert_eq!(o.status, JobStatus::Completed, "{}", o.name);
            let r = o.result.as_ref().expect("completed job has a result");
            (r.report.n_links, r.report.n_switches)
        })
        .collect()
}

fn main() {
    let json = std::env::args().skip(1).any(|a| a == "--json");
    let hardware = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut baseline: Option<(Vec<(usize, usize)>, f64)> = None;
    let mut rows = Vec::new();
    if !json {
        println!(
            "engine scaling: {} jobs x {RESTARTS} restarts, {hardware} hardware thread(s)",
            Benchmark::ALL.len()
        );
        println!(
            "  {:>7} | {:>12} | {:>8} | {:>12}",
            "workers", "wall (ms)", "speedup", "total links"
        );
    }
    for workers in [1usize, 2, 4, 8] {
        let engine = Engine::new().with_workers(workers);
        let t0 = Instant::now();
        let outcomes = engine.run(paper_jobs());
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let fp = fingerprint(&outcomes);
        let (base_fp, base_ms) = baseline.get_or_insert_with(|| (fp.clone(), wall_ms));
        assert_eq!(
            &fp, base_fp,
            "worker count changed the selected results ({workers} workers)"
        );
        let speedup = *base_ms / wall_ms.max(1e-9);
        let total_links: usize = fp.iter().map(|&(l, _)| l).sum();
        if json {
            rows.push(JsonValue::object([
                ("workers", JsonValue::from(workers)),
                ("hardware_threads", JsonValue::from(hardware)),
                ("jobs", JsonValue::from(Benchmark::ALL.len())),
                ("restarts", JsonValue::from(RESTARTS)),
                ("wall_ms", JsonValue::from(wall_ms)),
                ("speedup_vs_1", JsonValue::from(speedup)),
                ("total_links", JsonValue::from(total_links)),
            ]));
        } else {
            println!("  {workers:>7} | {wall_ms:>12.1} | {speedup:>7.2}x | {total_links:>12}");
        }
    }
    if json {
        println!("{}", JsonValue::array(rows));
    } else {
        println!("selected results are bit-identical across worker counts (asserted).");
    }
}
