//! Contention-model extraction benchmarks: overlap relation, contention
//! set and clique set scaling with trace size.

use nocsyn_bench::timing::Runner;
use nocsyn_model::Trace;
use nocsyn_workloads::{random_permutation_schedule, Benchmark, WorkloadParams};

fn trace_of_size(n_procs: usize, n_phases: usize) -> Trace {
    random_permutation_schedule(
        n_procs,
        n_phases,
        7,
        &WorkloadParams::default().with_bytes(512),
    )
    .to_trace()
}

fn bench_extraction(runner: &Runner) {
    for (n, phases) in [(8usize, 16usize), (16, 64), (32, 128)] {
        let trace = trace_of_size(n, phases);
        runner.case(
            &format!("model/extract/contention-set/{n}x{phases}"),
            || trace.contention_set(),
        );
        runner.case(&format!("model/extract/max-cliques/{n}x{phases}"), || {
            trace.maximum_clique_set()
        });
        runner.case(&format!("model/extract/overlap/{n}x{phases}"), || {
            trace.overlap_relation()
        });
    }
}

fn bench_benchmark_patterns(runner: &Runner) {
    for benchmark in Benchmark::ALL {
        let schedule = benchmark
            .schedule(16, &WorkloadParams::paper_default(benchmark))
            .unwrap();
        runner.case(
            &format!("model/benchmark-patterns/{}", benchmark.name()),
            || schedule.maximum_clique_set(),
        );
    }
}

fn main() {
    let runner = Runner::from_env();
    bench_extraction(&runner);
    bench_benchmark_patterns(&runner);
}
