//! Contention-model extraction benchmarks: overlap relation, contention
//! set and clique set scaling with trace size.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use nocsyn_model::Trace;
use nocsyn_workloads::{random_permutation_schedule, Benchmark, WorkloadParams};

fn trace_of_size(n_procs: usize, n_phases: usize) -> Trace {
    random_permutation_schedule(
        n_procs,
        n_phases,
        7,
        &WorkloadParams::default().with_bytes(512),
    )
    .to_trace()
}

fn bench_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("model/extract");
    group.sample_size(30).measurement_time(Duration::from_secs(5));
    for (n, phases) in [(8usize, 16usize), (16, 64), (32, 128)] {
        let trace = trace_of_size(n, phases);
        group.bench_with_input(
            BenchmarkId::new("contention-set", format!("{n}x{phases}")),
            &trace,
            |b, t| b.iter(|| t.contention_set()),
        );
        group.bench_with_input(
            BenchmarkId::new("max-cliques", format!("{n}x{phases}")),
            &trace,
            |b, t| b.iter(|| t.maximum_clique_set()),
        );
        group.bench_with_input(
            BenchmarkId::new("overlap", format!("{n}x{phases}")),
            &trace,
            |b, t| b.iter(|| t.overlap_relation()),
        );
    }
    group.finish();
}

fn bench_benchmark_patterns(c: &mut Criterion) {
    let mut group = c.benchmark_group("model/benchmark-patterns");
    for benchmark in Benchmark::ALL {
        let schedule = benchmark
            .schedule(16, &WorkloadParams::paper_default(benchmark))
            .unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(benchmark.name()),
            &schedule,
            |b, s| b.iter(|| s.maximum_clique_set()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_extraction, bench_benchmark_patterns);
criterion_main!(benches);
