//! Coloring benchmarks: the `O(KL)` fast bound versus real coloring.

use std::collections::BTreeSet;

use nocsyn_bench::timing::Runner;
use nocsyn_coloring::{
    exact_chromatic, fast_color_directed, greedy_dsatur, two_color, ConflictGraph,
};
use nocsyn_model::{Clique, CliqueSet, ContentionSet, Flow};

/// Deterministic pseudo-random conflict graph of `n` vertices with edge
/// probability ~1/3.
fn random_graph(n: usize, mut seed: u64) -> ConflictGraph {
    let mut edges = Vec::new();
    for i in 0..n {
        for j in i + 1..n {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if (seed >> 59).is_multiple_of(3) {
                edges.push((i, j));
            }
        }
    }
    ConflictGraph::from_edges(n, &edges)
}

fn bench_graph_coloring(runner: &Runner) {
    for n in [8usize, 16, 32] {
        let graph = random_graph(n, 42);
        runner.case(&format!("coloring/graph/dsatur/{n}"), || {
            greedy_dsatur(&graph)
        });
        runner.case(&format!("coloring/graph/exact/{n}"), || {
            exact_chromatic(&graph)
        });
        runner.case(&format!("coloring/graph/two-color/{n}"), || {
            two_color(&graph)
        });
    }
}

fn bench_fast_color(runner: &Runner) {
    // K cliques of L flows each, with half the flows crossing the probe
    // set: the paper's O(KL) estimate.
    for (k, l) in [(8usize, 8usize), (32, 16), (128, 16), (32, 64)] {
        let cliques = CliqueSet::from_cliques((0..k).map(|i| {
            (0..l)
                .map(|j| Flow::from_indices(2 * (i * l + j), 2 * (i * l + j) + 1))
                .collect::<Clique>()
        }));
        let crossing: BTreeSet<Flow> = cliques
            .iter()
            .flat_map(|c| c.iter())
            .enumerate()
            .filter(|(i, _)| i % 2 == 0)
            .map(|(_, f)| f)
            .collect();
        runner.case(&format!("coloring/fast-bound/K{k}-L{l}"), || {
            fast_color_directed(&cliques, &crossing)
        });
    }
}

fn bench_conflict_graph_build(runner: &Runner) {
    for n in [16usize, 64, 256] {
        let flows: Vec<Flow> = (0..n).map(|i| Flow::from_indices(i, i + n)).collect();
        let mut contention = ContentionSet::new();
        for i in (0..n).step_by(2) {
            for j in (1..n).step_by(3) {
                if i != j {
                    contention.insert(flows[i], flows[j]);
                }
            }
        }
        runner.case(&format!("coloring/build/{n}"), || {
            ConflictGraph::from_flows(flows.clone(), &contention)
        });
    }
}

fn main() {
    let runner = Runner::from_env();
    bench_graph_coloring(&runner);
    bench_fast_color(&runner);
    bench_conflict_graph_build(&runner);
}
