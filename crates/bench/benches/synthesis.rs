//! Synthesis benchmarks: the paper's §3.3 complexity claims in practice.
//!
//! * whole-methodology wall time per benchmark and process count (the
//!   `O(N²KL)` claim);
//! * fast vs exact coloring during the search (the central complexity
//!   lever — DESIGN.md ablation 1).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use nocsyn_synth::{synthesize, AppPattern, ColoringStrategy, SynthesisConfig};
use nocsyn_workloads::{Benchmark, WorkloadParams};

fn single_run_config(seed: u64) -> SynthesisConfig {
    // One run (no restarts) isolates the algorithm's own cost.
    SynthesisConfig::new().with_seed(seed).with_restarts(1)
}

fn bench_by_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesize/cg");
    group.sample_size(10).measurement_time(Duration::from_secs(8));
    for n in [4usize, 8, 16, 64] {
        let schedule = Benchmark::Cg
            .schedule(n, &WorkloadParams::paper_default(Benchmark::Cg).with_iterations(1))
            .expect("powers of two are valid for CG");
        let pattern = AppPattern::from_schedule(&schedule);
        group.bench_with_input(BenchmarkId::from_parameter(n), &pattern, |b, pattern| {
            b.iter(|| synthesize(pattern, &single_run_config(1)).unwrap());
        });
    }
    group.finish();
}

fn bench_by_benchmark(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesize/16procs");
    group.sample_size(10).measurement_time(Duration::from_secs(8));
    for benchmark in Benchmark::ALL {
        let schedule = benchmark
            .schedule(16, &WorkloadParams::paper_default(benchmark).with_iterations(1))
            .expect("16 is valid for every benchmark");
        let pattern = AppPattern::from_schedule(&schedule);
        group.bench_with_input(
            BenchmarkId::from_parameter(benchmark.name()),
            &pattern,
            |b, pattern| {
                b.iter(|| synthesize(pattern, &single_run_config(2)).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_coloring_strategy(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesize/coloring-strategy");
    group.sample_size(10).measurement_time(Duration::from_secs(8));
    let schedule = Benchmark::Cg
        .schedule(16, &WorkloadParams::paper_default(Benchmark::Cg).with_iterations(1))
        .expect("16 is valid for CG");
    let pattern = AppPattern::from_schedule(&schedule);
    for (name, strategy) in [("fast", ColoringStrategy::Fast), ("exact", ColoringStrategy::Exact)]
    {
        group.bench_with_input(BenchmarkId::from_parameter(name), &strategy, |b, &strategy| {
            b.iter(|| {
                synthesize(&pattern, &single_run_config(3).with_coloring(strategy)).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_by_size,
    bench_by_benchmark,
    bench_coloring_strategy
);
criterion_main!(benches);
