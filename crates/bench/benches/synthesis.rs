//! Synthesis benchmarks: the paper's §3.3 complexity claims in practice.
//!
//! * whole-methodology wall time per benchmark and process count (the
//!   `O(N²KL)` claim);
//! * fast vs exact coloring during the search (the central complexity
//!   lever — DESIGN.md ablation 1).

use nocsyn_bench::timing::Runner;
use nocsyn_synth::{synthesize, AppPattern, ColoringStrategy, SynthesisConfig};
use nocsyn_workloads::{Benchmark, WorkloadParams};

fn single_run_config(seed: u64) -> SynthesisConfig {
    // One run (no restarts) isolates the algorithm's own cost.
    SynthesisConfig::new().with_seed(seed).with_restarts(1)
}

fn bench_by_size(runner: &Runner) {
    for n in [4usize, 8, 16, 64] {
        let schedule = Benchmark::Cg
            .schedule(
                n,
                &WorkloadParams::paper_default(Benchmark::Cg).with_iterations(1),
            )
            .expect("powers of two are valid for CG");
        let pattern = AppPattern::from_schedule(&schedule);
        runner.case(&format!("synthesize/cg/{n}"), || {
            synthesize(&pattern, &single_run_config(1)).unwrap()
        });
    }
}

fn bench_by_benchmark(runner: &Runner) {
    for benchmark in Benchmark::ALL {
        let schedule = benchmark
            .schedule(
                16,
                &WorkloadParams::paper_default(benchmark).with_iterations(1),
            )
            .expect("16 is valid for every benchmark");
        let pattern = AppPattern::from_schedule(&schedule);
        runner.case(&format!("synthesize/16procs/{}", benchmark.name()), || {
            synthesize(&pattern, &single_run_config(2)).unwrap()
        });
    }
}

fn bench_coloring_strategy(runner: &Runner) {
    let schedule = Benchmark::Cg
        .schedule(
            16,
            &WorkloadParams::paper_default(Benchmark::Cg).with_iterations(1),
        )
        .expect("16 is valid for CG");
    let pattern = AppPattern::from_schedule(&schedule);
    for (name, strategy) in [
        ("fast", ColoringStrategy::Fast),
        ("exact", ColoringStrategy::Exact),
    ] {
        runner.case(&format!("synthesize/coloring-strategy/{name}"), || {
            synthesize(&pattern, &single_run_config(3).with_coloring(strategy)).unwrap()
        });
    }
}

fn main() {
    let runner = Runner::from_env();
    bench_by_size(&runner);
    bench_by_benchmark(&runner);
    bench_coloring_strategy(&runner);
}
