//! Simulator benchmarks: engine throughput and closed-loop run cost.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use nocsyn_model::Flow;
use nocsyn_sim::{AppDriver, Engine, RoutePolicy, SimConfig};
use nocsyn_topo::regular;
use nocsyn_workloads::{Benchmark, WorkloadParams};

fn bench_open_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/open-loop-mesh");
    group.sample_size(20).measurement_time(Duration::from_secs(6));
    for n in [4usize, 16] {
        let side = (n as f64).sqrt() as usize;
        let (net, routes) = regular::mesh(side, side).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &(net, routes), |b, (net, routes)| {
            b.iter(|| {
                let mut eng = Engine::new(net, SimConfig::paper());
                // A full random-ish permutation of 1 KiB messages.
                for s in 0..n {
                    let flow = Flow::from_indices(s, (s + n / 2 + 1) % n);
                    if flow.src != flow.dst {
                        eng.inject(flow, 1024, routes.route(flow).unwrap(), 0, 0);
                    }
                }
                eng.run_until_idle().unwrap();
                eng.packet_stats().delivered
            });
        });
    }
    group.finish();
}

fn bench_closed_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/closed-loop");
    group.sample_size(10).measurement_time(Duration::from_secs(10));
    let schedule = Benchmark::Cg
        .schedule(
            16,
            &WorkloadParams::paper_default(Benchmark::Cg)
                .with_iterations(2)
                .with_bytes(1024),
        )
        .unwrap();
    for kind in ["crossbar", "mesh"] {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &kind| {
            b.iter(|| {
                let (net, routes) = match kind {
                    "crossbar" => regular::crossbar(16).unwrap(),
                    _ => regular::mesh(4, 4).unwrap(),
                };
                AppDriver::new(&net, RoutePolicy::deterministic(routes), SimConfig::paper())
                    .run(&schedule)
                    .unwrap()
                    .exec_cycles
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_open_loop, bench_closed_loop);
criterion_main!(benches);
