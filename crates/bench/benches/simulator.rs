//! Simulator benchmarks: engine throughput and closed-loop run cost.

use nocsyn_bench::timing::Runner;
use nocsyn_model::Flow;
use nocsyn_sim::{AppDriver, Engine, RoutePolicy, SimConfig};
use nocsyn_topo::regular;
use nocsyn_workloads::{Benchmark, WorkloadParams};

fn bench_open_loop(runner: &Runner) {
    for n in [4usize, 16] {
        let side = (n as f64).sqrt() as usize;
        let (net, routes) = regular::mesh(side, side).unwrap();
        runner.case(&format!("sim/open-loop-mesh/{n}"), || {
            let mut eng = Engine::new(&net, SimConfig::paper());
            // A full random-ish permutation of 1 KiB messages.
            for s in 0..n {
                let flow = Flow::from_indices(s, (s + n / 2 + 1) % n);
                if flow.src != flow.dst {
                    eng.inject(flow, 1024, routes.route(flow).unwrap(), 0, 0);
                }
            }
            eng.run_until_idle().unwrap();
            eng.packet_stats().delivered
        });
    }
}

fn bench_closed_loop(runner: &Runner) {
    let schedule = Benchmark::Cg
        .schedule(
            16,
            &WorkloadParams::paper_default(Benchmark::Cg)
                .with_iterations(2)
                .with_bytes(1024),
        )
        .unwrap();
    for kind in ["crossbar", "mesh"] {
        runner.case(&format!("sim/closed-loop/{kind}"), || {
            let (net, routes) = match kind {
                "crossbar" => regular::crossbar(16).unwrap(),
                _ => regular::mesh(4, 4).unwrap(),
            };
            AppDriver::new(&net, RoutePolicy::deterministic(routes), SimConfig::paper())
                .run(&schedule)
                .unwrap()
                .exec_cycles
        });
    }
}

fn main() {
    let runner = Runner::from_env();
    bench_open_loop(&runner);
    bench_closed_loop(&runner);
}
