//! The §4 time-skew tradeoff, measured: the paper extracts contention
//! periods assuming perfectly synchronized library calls and argues the
//! resulting (leaner) networks tolerate the skew of real executions with
//! only mild blocking. This binary lowers the CG@16 schedule to traces at
//! increasing per-process skew and replays them open-loop on the
//! CG-generated network, the mesh and the crossbar, reporting mean
//! message latency.

use nocsyn_bench::{build_instance, HarnessError, NetworkKind};
use nocsyn_model::SkewModel;
use nocsyn_sim::{run_trace, SimConfig};
use nocsyn_workloads::{Benchmark, WorkloadParams};

fn main() -> Result<(), HarnessError> {
    let schedule = Benchmark::Cg
        .schedule(16, &WorkloadParams::paper_default(Benchmark::Cg))
        .expect("16 is valid for CG");

    let instances: Vec<_> = [
        NetworkKind::Generated,
        NetworkKind::Mesh,
        NetworkKind::Crossbar,
    ]
    .into_iter()
    .map(|kind| build_instance(kind, &schedule, 0x5EE7).map(|i| (kind, i)))
    .collect::<Result<_, _>>()?;

    println!("CG@16 open-loop replay: mean message latency (cycles) vs per-process skew");
    println!(
        "  {:>10} | {:>10} {:>10} {:>10} | {:>17}",
        "skew (cyc)", "generated", "mesh", "crossbar", "gen vs xbar"
    );
    for skew in [0u64, 64, 256, 1024, 4096] {
        let trace = SkewModel::new(skew, 0xBEE5).apply(&schedule);
        let mut lat = Vec::new();
        for (_, inst) in &instances {
            let config =
                SimConfig::paper().with_link_delays(inst.floorplan.link_lengths(&inst.network));
            let stats = run_trace(&inst.network, &inst.policy, config, &trace)?;
            assert_eq!(
                stats.delivered as usize,
                trace.len(),
                "message conservation"
            );
            lat.push(stats.mean_latency);
        }
        println!(
            "  {:>10} | {:>10.0} {:>10.0} {:>10.0} | {:>+16.1}%",
            skew,
            lat[0],
            lat[1],
            lat[2],
            100.0 * (lat[0] / lat[2] - 1.0)
        );
    }
    println!();
    println!("expected shape: at zero skew the generated network matches the crossbar (it");
    println!("was provisioned for exactly these periods); growing skew adds blocking on the");
    println!("lean network first, but it should stay well below the mesh's contention.");
    Ok(())
}
