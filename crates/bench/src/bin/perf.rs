//! Synthesis hot-path performance harness: wall time and moves/sec for
//! the annealing search on CG16 / MG8 / FFT16.
//!
//! Usage: `perf [--json] [--seed S] [--iters N]`.
//!
//! Every future performance PR is judged against this harness (see
//! EXPERIMENTS.md and BENCH_5.json). Two output channels with different
//! contracts:
//!
//! * `--json` (stdout): **deterministic** counters only — link/switch
//!   totals of the portfolio winner and the summed search counters across
//!   all restarts and iterations. No wall-clock fields, so same-seed runs
//!   are byte-identical (CI diffs two runs).
//! * human mode (stdout) / `--json` companion (stderr): measured wall
//!   time and moves/sec, which vary run to run and stay out of the
//!   byte-compared artifact.
//!
//! The portfolio is driven through `synthesize_attempt` rather than
//! `synthesize` so the harness can sum `moves_tried` over *every* restart
//! (the report of the winner alone undercounts the work performed), while
//! still selecting the exact result the sequential loop would keep.

use std::time::{Duration, Instant};

use nocsyn_model::json::JsonValue;
use nocsyn_synth::{portfolio_rank, synthesize_attempt, AppPattern, SynthesisConfig};
use nocsyn_workloads::{Benchmark, WorkloadParams};

/// One benchmark case of the harness.
struct Case {
    name: &'static str,
    benchmark: Benchmark,
    n_procs: usize,
}

const CASES: [Case; 3] = [
    Case {
        name: "CG16",
        benchmark: Benchmark::Cg,
        n_procs: 16,
    },
    Case {
        name: "MG8",
        benchmark: Benchmark::Mg,
        n_procs: 8,
    },
    Case {
        name: "FFT16",
        benchmark: Benchmark::Fft,
        n_procs: 16,
    },
];

/// Deterministic counters plus the (non-deterministic) elapsed time of
/// one case.
struct Outcome {
    name: &'static str,
    n_procs: usize,
    flows: usize,
    links: usize,
    switches: usize,
    constraints_met: bool,
    moves_tried: usize,
    moves_accepted: usize,
    reroutes_tried: usize,
    reroutes_accepted: usize,
    reroutes_neutral: usize,
    elapsed: Duration,
}

fn usage() -> ! {
    eprintln!("usage: perf [--json] [--seed S] [--iters N]");
    std::process::exit(2);
}

struct Options {
    json: bool,
    seed: u64,
    iters: usize,
}

fn parse_args() -> Options {
    let mut opts = Options {
        json: false,
        seed: 1,
        iters: 3,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => opts.json = true,
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(s) => opts.seed = s,
                None => usage(),
            },
            "--iters" => match args.next().and_then(|v| v.parse().ok()).filter(|&n| n >= 1) {
                Some(n) => opts.iters = n,
                None => usage(),
            },
            _ => usage(),
        }
    }
    opts
}

fn run_case(case: &Case, config: &SynthesisConfig, iters: usize) -> Outcome {
    let sched = case
        .benchmark
        .schedule(
            case.n_procs,
            &WorkloadParams::paper_default(case.benchmark).with_iterations(1),
        )
        .expect("harness process counts are valid");
    let pattern = AppPattern::from_schedule(&sched);

    let mut moves_tried = 0;
    let mut moves_accepted = 0;
    let mut reroutes_tried = 0;
    let mut reroutes_accepted = 0;
    let mut reroutes_neutral = 0;
    let mut best = None;
    let started = Instant::now();
    for _ in 0..iters {
        for attempt in 0..config.restarts().max(1) {
            let result = synthesize_attempt(&pattern, config, attempt)
                .expect("benchmark patterns are valid");
            moves_tried += result.report.moves_tried;
            moves_accepted += result.report.moves_accepted;
            reroutes_tried += result.report.reroutes_tried;
            reroutes_accepted += result.report.reroutes_accepted;
            reroutes_neutral += result.report.reroutes_neutral;
            let rank = (portfolio_rank(&result), attempt);
            if best
                .as_ref()
                .is_none_or(|(best_rank, _): &(_, nocsyn_synth::SynthesisResult)| rank < *best_rank)
            {
                best = Some((rank, result));
            }
        }
    }
    let elapsed = started.elapsed();
    let (_, winner) = best.expect("at least one attempt ran");
    Outcome {
        name: case.name,
        n_procs: case.n_procs,
        flows: pattern.flows().len(),
        links: winner.report.n_links,
        switches: winner.report.n_switches,
        constraints_met: winner.report.constraints_met,
        moves_tried,
        moves_accepted,
        reroutes_tried,
        reroutes_accepted,
        reroutes_neutral,
        elapsed,
    }
}

fn moves_per_sec(o: &Outcome) -> f64 {
    let secs = o.elapsed.as_secs_f64();
    if secs > 0.0 {
        o.moves_tried as f64 / secs
    } else {
        0.0
    }
}

fn main() {
    let opts = parse_args();
    let config = SynthesisConfig::new().with_seed(opts.seed);
    let outcomes: Vec<Outcome> = CASES
        .iter()
        .map(|c| run_case(c, &config, opts.iters))
        .collect();

    if opts.json {
        let cases = JsonValue::array(outcomes.iter().map(|o| {
            JsonValue::object([
                ("name", JsonValue::from(o.name)),
                ("n_procs", JsonValue::from(o.n_procs)),
                ("flows", JsonValue::from(o.flows)),
                ("links", JsonValue::from(o.links)),
                ("switches", JsonValue::from(o.switches)),
                ("constraints_met", JsonValue::from(o.constraints_met)),
                ("moves_tried", JsonValue::from(o.moves_tried)),
                ("moves_accepted", JsonValue::from(o.moves_accepted)),
                ("reroutes_tried", JsonValue::from(o.reroutes_tried)),
                ("reroutes_accepted", JsonValue::from(o.reroutes_accepted)),
                ("reroutes_neutral", JsonValue::from(o.reroutes_neutral)),
            ])
        }));
        let doc = JsonValue::object([
            ("bench", JsonValue::from("perf")),
            ("seed", JsonValue::from(opts.seed)),
            ("iters", JsonValue::from(opts.iters)),
            ("restarts", JsonValue::from(config.restarts())),
            ("cases", cases),
        ]);
        println!("{doc}");
        // Timings go to stderr so the byte-compared artifact stays
        // deterministic.
        for o in &outcomes {
            eprintln!(
                "# {}: {:.1} ms, {:.0} moves/s",
                o.name,
                o.elapsed.as_secs_f64() * 1e3,
                moves_per_sec(o)
            );
        }
    } else {
        println!("synthesis perf (seed {}, iters {})", opts.seed, opts.iters);
        println!(
            "{:<6} {:>6} {:>6} {:>8} {:>12} {:>10} {:>12}",
            "case", "links", "switch", "moves", "elapsed ms", "moves/s", "constraints"
        );
        for o in &outcomes {
            println!(
                "{:<6} {:>6} {:>6} {:>8} {:>12.1} {:>10.0} {:>12}",
                o.name,
                o.links,
                o.switches,
                o.moves_tried,
                o.elapsed.as_secs_f64() * 1e3,
                moves_per_sec(o),
                if o.constraints_met { "met" } else { "MISSED" }
            );
        }
    }
}
