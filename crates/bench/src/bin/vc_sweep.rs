//! Virtual-channel ablation: the paper attaches 3 VCs per physical link
//! to "alleviate contention problems for the mesh and torus" and to cover
//! the generated networks' skew-induced residual contention. This binary
//! sweeps the VC count and reports CG@16 execution time per network,
//! plus any deadlock recoveries — showing what the third VC actually buys.

use nocsyn_bench::{build_instance, HarnessError, NetworkKind};
use nocsyn_sim::{AppDriver, SimConfig};
use nocsyn_topo::is_deadlock_free;
use nocsyn_workloads::{Benchmark, WorkloadParams};

fn main() -> Result<(), HarnessError> {
    let schedule = Benchmark::Cg
        .schedule(16, &WorkloadParams::paper_default(Benchmark::Cg))
        .expect("16 is valid for CG");

    println!("CG@16 execution cycles vs virtual channels per link");
    println!(
        "  {:<10} | {:>9} {:>9} {:>9} {:>9} | {:>10}",
        "network", "1 VC", "2 VC", "3 VC", "4 VC", "CDG-free"
    );
    for kind in [
        NetworkKind::Mesh,
        NetworkKind::Torus,
        NetworkKind::Generated,
    ] {
        let inst = build_instance(kind, &schedule, 0x7C)?;
        let mut row = Vec::new();
        let mut kills = 0u64;
        for vcs in 1..=4usize {
            let config = SimConfig::paper()
                .with_vcs(vcs)
                .with_link_delays(inst.floorplan.link_lengths(&inst.network));
            let stats =
                AppDriver::new(&inst.network, inst.policy.clone(), config).run(&schedule)?;
            kills += stats.packets.deadlock_kills;
            row.push(stats.exec_cycles);
        }
        let cdg = match &inst.synthesis {
            Some(s) => is_deadlock_free(&s.routes).to_string(),
            None => "-".to_string(),
        };
        println!(
            "  {:<10} | {:>9} {:>9} {:>9} {:>9} | {:>10}   (kills across sweep: {kills})",
            kind.name(),
            row[0],
            row[1],
            row[2],
            row[3],
            cdg
        );
    }
    println!();
    println!("expected shape: the torus NEEDS a second VC — at 1 VC its wraparound channel");
    println!("dependencies deadlock and regressive recovery pays a large penalty; the");
    println!("generated network is contention-free (and CDG-acyclic) at a single VC, so");
    println!("extra channels buy it nothing.");
    Ok(())
}
