//! Decomposition harness: flat vs clustered synthesis on 64–256-node
//! permutation patterns under the *same* deterministic search budget.
//!
//! Usage: `decompose [--json] [--seed S] [--pattern-out PATH]`.
//!
//! The budget is a partitioning-round cap (`max_rounds`), not wall time,
//! so the comparison is bit-reproducible: a flat run of an `n`-node
//! pattern needs on the order of `n` splits to reach the degree bound and
//! exhausts the cap infeasible, while decomposition hands each ~16-node
//! cluster the same cap and finishes comfortably inside it. Every
//! decomposed result is re-verified globally (Theorem 1 on the stitched
//! network) and round-tripped through the independent certificate
//! checker.
//!
//! Two-channel contract shared with the other harnesses:
//!
//! * `--json` (stdout): deterministic counters only — per-size
//!   feasibility of both modes, decomposition shape, switch/link totals,
//!   and the certificate verdict. Same seed => identical bytes; CI
//!   byte-diffs this against the checked-in BENCH_8.json and a rerun.
//! * human mode (stdout) / `--json` companion (stderr): wall times,
//!   which vary run to run.
//!
//! `--pattern-out PATH` additionally writes the 64-node case's pattern
//! text (the exact bytes this harness synthesizes) so the CLI gates can
//! drive `nocsyn synth --decompose` on the same workload.

use std::time::{Duration, Instant};

use nocsyn_certify::{check_certificate, CheckOptions};
use nocsyn_engine::{Engine, Job, JobOutcome, JobStatus};
use nocsyn_model::{format_schedule, json::JsonValue};
use nocsyn_synth::{AppPattern, SynthesisConfig, SynthesisMode, SynthesisRequest};
use nocsyn_topo::verify_contention_free;
use nocsyn_workloads::{clustered_permutation_schedule, WorkloadParams};

/// Pattern sizes swept (processes per pattern).
const SIZES: [usize; 3] = [64, 128, 256];
/// Phases per synthetic pattern.
const PHASES: usize = 2;
/// Locality block size — matches the 16-processor neighborhood
/// `auto_cluster_count` assumes, so the affinity cut can recover it.
const BLOCK: usize = 16;
/// Block-crossing flows injected per phase.
const CROSS_FLOWS: usize = 3;
/// The shared per-run budget: partitioning rounds before the search
/// gives up on the degree constraint.
const BUDGET_ROUNDS: usize = 32;
/// Restart portfolio both modes run under (budget parity).
const RESTARTS: usize = 2;

/// The swept pattern for one size: block-local permutations with a thin
/// cross-block tail (the paper's "well-behaved" shape at scale).
fn workload(n: usize, seed: u64) -> nocsyn_model::PhaseSchedule {
    clustered_permutation_schedule(
        n,
        BLOCK,
        PHASES,
        CROSS_FLOWS,
        seed ^ n as u64,
        &WorkloadParams::default().with_bytes(64),
    )
}

struct Options {
    json: bool,
    seed: u64,
    pattern_out: Option<String>,
}

fn usage() -> ! {
    eprintln!("usage: decompose [--json] [--seed S] [--pattern-out PATH]");
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        json: false,
        seed: 1,
        pattern_out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => opts.json = true,
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(s) => opts.seed = s,
                None => usage(),
            },
            "--pattern-out" => match args.next() {
                Some(p) => opts.pattern_out = Some(p),
                None => usage(),
            },
            _ => usage(),
        }
    }
    opts
}

struct Case {
    n: usize,
    flat_feasible: bool,
    flat_switches: usize,
    flat_links: usize,
    flat_max_degree: usize,
    dec_feasible: bool,
    dec_max_degree: usize,
    contention_free: bool,
    cert_valid: bool,
    clusters: usize,
    cut_flows: usize,
    stitch_links: usize,
    largest_cluster: usize,
    switches: usize,
    links: usize,
    flat_wall: Duration,
    dec_wall: Duration,
}

/// The shared budgeted configuration for one pattern size.
fn budget_config(seed: u64, n: usize) -> SynthesisConfig {
    SynthesisConfig::new()
        .with_seed(seed ^ n as u64)
        .with_max_rounds(BUDGET_ROUNDS)
}

fn completed(outcome: &JobOutcome) -> &nocsyn_synth::SynthesisResult {
    if let JobStatus::Failed(e) = &outcome.status {
        panic!("{} failed: {e}", outcome.name);
    }
    outcome
        .result
        .as_ref()
        .unwrap_or_else(|| panic!("{} returned no result", outcome.name))
}

fn run_case(engine: &Engine, n: usize, seed: u64) -> Case {
    let sched = workload(n, seed);
    let pattern = AppPattern::from_schedule(&sched);
    let flat = SynthesisRequest::builder(pattern.clone())
        .config(budget_config(seed, n))
        .restarts(RESTARTS)
        .build()
        .expect("a flat request builds");
    let decomposed = SynthesisRequest::builder(pattern.clone())
        .config(budget_config(seed, n))
        .restarts(RESTARTS)
        .mode(SynthesisMode::Decomposed { clusters: None })
        .build()
        .expect("an auto-clustered request builds");

    let t0 = Instant::now();
    let flat_outcome = engine
        .run(vec![Job::new(format!("flat{n}"), flat)])
        .pop()
        .expect("one outcome");
    let flat_wall = t0.elapsed();
    let t0 = Instant::now();
    let dec_outcome = engine
        .run(vec![Job::new(format!("dec{n}"), decomposed)])
        .pop()
        .expect("one outcome");
    let dec_wall = t0.elapsed();

    let flat_result = completed(&flat_outcome);
    let dec_result = completed(&dec_outcome);
    let summary = dec_outcome
        .decomposition
        .expect("a decomposed job reports its decomposition");
    eprintln!(
        "# n={n}: flat deg {} met {}, dec deg {} met {} ({} clusters, {} cut, {} stitch links)",
        flat_result.report.max_degree,
        flat_result.report.constraints_met,
        dec_result.report.max_degree,
        dec_result.report.constraints_met,
        summary.clusters,
        summary.cut_flows,
        summary.stitch_links,
    );
    let check = verify_contention_free(pattern.contention(), &dec_result.routes);
    let cert = dec_result.certificate(&pattern, None).to_json().to_string();
    let cert_valid = check_certificate(&format_schedule(&sched), &cert, None, &CheckOptions::new())
        .map(|s| s.contention_free)
        .unwrap_or(false);
    Case {
        n,
        flat_feasible: flat_result.report.constraints_met,
        flat_switches: flat_result.report.n_switches,
        flat_links: flat_result.report.n_links,
        flat_max_degree: flat_result.report.max_degree,
        dec_feasible: dec_result.report.constraints_met,
        dec_max_degree: dec_result.report.max_degree,
        contention_free: check.is_contention_free(),
        cert_valid,
        clusters: summary.clusters,
        cut_flows: summary.cut_flows,
        stitch_links: summary.stitch_links,
        largest_cluster: summary.largest_cluster,
        switches: dec_result.report.n_switches,
        links: dec_result.report.n_links,
        flat_wall,
        dec_wall,
    }
}

fn main() {
    let opts = parse_args();
    if let Some(path) = &opts.pattern_out {
        let sched = workload(64, opts.seed);
        std::fs::write(path, format_schedule(&sched)).expect("pattern-out path is writable");
    }
    let engine = Engine::new();
    let cases: Vec<Case> = SIZES
        .iter()
        .map(|&n| run_case(&engine, n, opts.seed))
        .collect();

    // The headline claims, asserted so CI fails loudly if they regress:
    // every decomposed result meets the degree bound, is contention-free
    // and certificate-valid; and from 128 nodes up the shared budget
    // separates the modes — the flat annealer exhausts it infeasible
    // while decomposition finishes inside it.
    for c in &cases {
        assert!(
            c.dec_feasible && c.contention_free && c.cert_valid,
            "decomposed {}-node result must be feasible, contention-free and certified \
             (feasible={}, contention_free={}, cert_valid={})",
            c.n,
            c.dec_feasible,
            c.contention_free,
            c.cert_valid
        );
        assert!(
            c.n < 128 || !c.flat_feasible,
            "flat {}-node run unexpectedly fit the {BUDGET_ROUNDS}-round budget",
            c.n
        );
    }

    if opts.json {
        let rows = JsonValue::array(cases.iter().map(|c| {
            JsonValue::object([
                ("n", JsonValue::from(c.n)),
                ("flat_feasible", JsonValue::from(c.flat_feasible)),
                ("flat_switches", JsonValue::from(c.flat_switches)),
                ("flat_links", JsonValue::from(c.flat_links)),
                ("flat_max_degree", JsonValue::from(c.flat_max_degree)),
                ("decomposed_feasible", JsonValue::from(c.dec_feasible)),
                ("decomposed_max_degree", JsonValue::from(c.dec_max_degree)),
                ("contention_free", JsonValue::from(c.contention_free)),
                ("cert_valid", JsonValue::from(c.cert_valid)),
                ("clusters", JsonValue::from(c.clusters)),
                ("cut_flows", JsonValue::from(c.cut_flows)),
                ("stitch_links", JsonValue::from(c.stitch_links)),
                ("largest_cluster", JsonValue::from(c.largest_cluster)),
                ("switches", JsonValue::from(c.switches)),
                ("links", JsonValue::from(c.links)),
            ])
        }));
        let doc = JsonValue::object([
            ("bench", JsonValue::from("decompose")),
            ("seed", JsonValue::from(opts.seed)),
            ("budget_rounds", JsonValue::from(BUDGET_ROUNDS)),
            ("restarts", JsonValue::from(RESTARTS)),
            ("phases", JsonValue::from(PHASES)),
            ("cases", rows),
        ]);
        println!("{doc}");
        for c in &cases {
            eprintln!(
                "# n={}: flat {:.1} ms, decomposed {:.1} ms",
                c.n,
                c.flat_wall.as_secs_f64() * 1e3,
                c.dec_wall.as_secs_f64() * 1e3,
            );
        }
    } else {
        println!(
            "decomposition vs flat under a {BUDGET_ROUNDS}-round budget (seed {})",
            opts.seed
        );
        println!(
            "{:>5} {:>9} {:>9} {:>8} {:>9} {:>7} {:>7} {:>7} {:>10} {:>10}",
            "n",
            "flat",
            "decomp",
            "clusters",
            "cut",
            "stitch",
            "switch",
            "links",
            "flat ms",
            "dec ms"
        );
        for c in &cases {
            println!(
                "{:>5} {:>9} {:>9} {:>8} {:>9} {:>7} {:>7} {:>7} {:>10.1} {:>10.1}",
                c.n,
                if c.flat_feasible { "ok" } else { "over" },
                if c.dec_feasible && c.cert_valid {
                    "certified"
                } else {
                    "FAILED"
                },
                c.clusters,
                c.cut_flows,
                c.stitch_links,
                c.switches,
                c.links,
                c.flat_wall.as_secs_f64() * 1e3,
                c.dec_wall.as_secs_f64() * 1e3,
            );
        }
    }
}
