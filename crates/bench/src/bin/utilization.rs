//! Link-utilization comparison (Section 3.4: "The link utilization,
//! layout area and performance of a cross-section of networks generated
//! by our design methodology are further analyzed").
//!
//! The efficiency claim behind the paper's resource reductions is that a
//! mesh leaves most of its wires idle on a well-behaved pattern, while a
//! generated network concentrates the same traffic onto far fewer links —
//! higher utilization per link at equal delivered bandwidth.

use nocsyn_bench::{build_instance, HarnessError, NetworkKind};
use nocsyn_workloads::{Benchmark, WorkloadParams};

fn main() -> Result<(), HarnessError> {
    println!("per-link utilization of switch-to-switch links, 16-node configurations");
    println!(
        "  {:<5} {:<10} | {:>6} | {:>10} {:>10} | {:>13}",
        "bench", "network", "links", "mean util", "peak util", "idle links"
    );
    for benchmark in Benchmark::ALL {
        let schedule = benchmark
            .schedule(16, &WorkloadParams::paper_default(benchmark))
            .expect("16 is valid for every benchmark");
        for kind in [NetworkKind::Mesh, NetworkKind::Generated] {
            let inst = build_instance(kind, &schedule, 0x07EC ^ (benchmark as u64))?;
            let stats = inst.simulate(&schedule)?;
            // Restrict to switch-to-switch links (skip NI attachments,
            // which are identical across topologies).
            let network_links: Vec<f64> = inst
                .network
                .link_ids()
                .filter(|&l| {
                    let link = inst.network.link(l).expect("iterating links");
                    link.a().as_switch().is_some() && link.b().as_switch().is_some()
                })
                .map(|l| stats.link_utilization[l.index()])
                .collect();
            if network_links.is_empty() {
                println!(
                    "  {:<5} {:<10} | {:>6} | {:>10} {:>10} | {:>13}",
                    benchmark.name(),
                    kind.name(),
                    0,
                    "-",
                    "-",
                    "-"
                );
                continue;
            }
            let mean = network_links.iter().sum::<f64>() / network_links.len() as f64;
            let peak = network_links.iter().copied().fold(0.0f64, f64::max);
            let idle = network_links.iter().filter(|&&u| u == 0.0).count();
            println!(
                "  {:<5} {:<10} | {:>6} | {:>9.1}% {:>9.1}% | {:>13}",
                benchmark.name(),
                kind.name(),
                network_links.len(),
                100.0 * mean,
                100.0 * peak,
                idle
            );
        }
    }
    println!();
    println!("expected shape: for contention-bound patterns (CG) the generated network");
    println!("carries the same traffic on a fraction of the links while *halving* the");
    println!("peak-link utilization (no hot spot); for sparse patterns both run cool and");
    println!("the generated network simply deletes the links the mesh wastes.");
    Ok(())
}
