//! Figure 7 reproduction: switch and link area of generated networks
//! normalized to a mesh (torus link area shown for reference).
//!
//! Usage: `fig7 [--nodes small|large|both] [--json] [--jobs N]` (default:
//! both, human-readable table; `--json` emits one machine-readable array
//! of row records instead; `--jobs` synthesizes the benchmark rows on N
//! worker threads — the rows are computed independently and printed in
//! the paper's order, so the output is identical for any N).

use nocsyn_bench::{build_instance, grid_dims, Fig7Row, HarnessError, NetworkKind};
use nocsyn_engine::par_map;
use nocsyn_floorplan::mesh_baseline;
use nocsyn_model::json::JsonValue;
use nocsyn_workloads::{Benchmark, WorkloadParams};

fn parse_configs() -> (Vec<bool>, bool, usize) {
    let mut args = std::env::args().skip(1);
    let mut which = "both".to_string();
    let mut json = false;
    let mut jobs = 1usize;
    while let Some(a) = args.next() {
        if a == "--nodes" {
            which = args.next().unwrap_or_else(|| "both".into());
        } else if a == "--json" {
            json = true;
        } else if a == "--jobs" {
            jobs = args
                .next()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n >= 1)
                .unwrap_or_else(|| {
                    eprintln!("--jobs expects a positive integer");
                    std::process::exit(2);
                });
        }
    }
    let configs = match which.as_str() {
        "small" => vec![false],
        "large" => vec![true],
        _ => vec![false, true],
    };
    (configs, json, jobs)
}

fn row_for(benchmark: Benchmark, large: bool) -> Result<Fig7Row, HarnessError> {
    let n = benchmark.paper_procs(large);
    let sched = benchmark
        .schedule(n, &WorkloadParams::paper_default(benchmark))
        .expect("paper process counts are valid");
    let seed = 0x51ED ^ (n as u64) ^ ((benchmark as u64) << 8);
    let generated = build_instance(NetworkKind::Generated, &sched, seed)?;
    let (rows, cols) = grid_dims(n);
    let mesh = mesh_baseline(rows, cols);
    let gen_area = generated.area();
    Ok(Fig7Row {
        benchmark,
        n_procs: n,
        gen_switch: gen_area.switch_area / mesh.switch_area,
        gen_link: gen_area.link_area / mesh.link_area,
        torus_link: 2.0,
    })
}

fn main() -> Result<(), HarnessError> {
    let (configs, json, jobs) = parse_configs();
    let combos: Vec<(bool, Benchmark)> = configs
        .iter()
        .flat_map(|&large| Benchmark::ALL.into_iter().map(move |b| (large, b)))
        .collect();
    // Rows are independent synthesis+floorplan runs: fan them across the
    // worker pool, keeping the paper's row order.
    let rows = par_map(combos, jobs, |(large, benchmark)| row_for(benchmark, large));
    let mut rows = rows.into_iter();
    if json {
        let mut out = Vec::new();
        for _ in &configs {
            for _ in Benchmark::ALL {
                out.push(rows.next().expect("one row per combo")?.to_json());
            }
        }
        println!("{}", JsonValue::array(out));
        return Ok(());
    }
    for large in configs {
        let label = if large {
            "Figure 7(b): 16-node configurations"
        } else {
            "Figure 7(a): 8/9-node configurations"
        };
        println!("{label}");
        println!("  resources normalized to the mesh (mesh = 1.00); torus switch ratio is 1.00");
        println!(
            "  {:<5} {:>5} | {:>13} {:>10} | {:>16} {:>13}",
            "bench", "procs", "switch (gen)", "link (gen)", "link (torus/mesh)", "gen switches"
        );
        for _ in Benchmark::ALL {
            let row = rows.next().expect("one row per combo")?;
            let n_sw = (row.gen_switch * {
                let (r, c) = grid_dims(row.n_procs);
                (r * c) as f64
            })
            .round() as usize;
            println!(
                "  {:<5} {:>5} | {:>13.2} {:>10.2} | {:>16.2} {:>13}",
                row.benchmark.name(),
                row.n_procs,
                row.gen_switch,
                row.gen_link,
                row.torus_link,
                n_sw
            );
        }
        println!();
    }
    println!("paper reference: ~0.45-0.55 switch and ~0.25-0.60 link area for the generated");
    println!("networks; torus always 2x mesh link area at equal switch area.");
    Ok(())
}
