//! Degradation sweep: how gracefully does each comparison network ride
//! out link failures? For every fault count `k` in `0..=K` we sample
//! seeded scenarios of `k` failed links, repair the route table over the
//! surviving subgraph (`nocsyn-faults`), re-run the Theorem 1 check on
//! the repaired table, and — where every flow still has a route —
//! re-simulate the benchmark closed-loop with the failed links enforced
//! by the simulator.
//!
//! Usage: `degradation [--procs N] [--max-faults K] [--scenarios S]
//! [--seed n] [--json] [--jobs N]` (defaults: CG at 16 procs, K=3, S=8).
//! Output is byte-identical for any `--jobs` value. Run in release mode.

use nocsyn_bench::{build_instance, HarnessError, NetworkKind};
use nocsyn_engine::par_map;
use nocsyn_faults::{DegradationAnalyzer, FaultScenario};
use nocsyn_model::json::JsonValue;
use nocsyn_sim::{AppDriver, RoutePolicy, SimConfig};
use nocsyn_synth::AppPattern;
use nocsyn_topo::RouteTable;
use nocsyn_workloads::{Benchmark, WorkloadParams};

struct Config {
    procs: usize,
    max_faults: usize,
    scenarios: usize,
    seed: u64,
    json: bool,
    jobs: usize,
}

fn parse_config() -> Config {
    let mut config = Config {
        procs: 16,
        max_faults: 3,
        scenarios: 8,
        seed: 0xFA17,
        json: false,
        jobs: 1,
    };
    let mut args = std::env::args().skip(1);
    let numeric = |name: &str, raw: Option<String>| -> u64 {
        raw.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("{name} expects an integer");
            std::process::exit(2);
        })
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--procs" => config.procs = numeric("--procs", args.next()) as usize,
            "--max-faults" => config.max_faults = numeric("--max-faults", args.next()) as usize,
            "--scenarios" => config.scenarios = numeric("--scenarios", args.next()).max(1) as usize,
            "--seed" => config.seed = numeric("--seed", args.next()),
            "--json" => config.json = true,
            "--jobs" => config.jobs = numeric("--jobs", args.next()).max(1) as usize,
            other => {
                eprintln!("unknown option `{other}`");
                std::process::exit(2);
            }
        }
    }
    config
}

/// One (network kind, fault count) cell of the sweep.
struct Row {
    kind: NetworkKind,
    k: usize,
    scenarios: usize,
    clean: usize,
    disconnected: usize,
    mean_exec: Option<f64>,
}

#[allow(clippy::too_many_arguments)]
fn row_for(
    kind: NetworkKind,
    k: usize,
    config: &Config,
    schedule: &nocsyn_model::PhaseSchedule,
    pattern: &AppPattern,
    seed: u64,
) -> Result<Row, HarnessError> {
    let inst = build_instance(kind, schedule, seed)?;
    // Deterministic first-alternative table over the pattern's flows —
    // exactly what the closed-loop driver will ask the policy for.
    let mut routes = RouteTable::new();
    for &flow in pattern.flows() {
        if let Some(route) = inst.policy.first_route(flow) {
            routes.insert(flow, route.clone());
        }
    }
    let scenarios: Vec<FaultScenario> = if k == 0 {
        vec![FaultScenario::none()]
    } else {
        (0..config.scenarios as u64)
            .map(|i| FaultScenario::sample(&inst.network, k, 0, config.seed ^ (i << 8) ^ k as u64))
            .collect()
    };
    let mut clean = 0usize;
    let mut disconnected = 0usize;
    let mut execs: Vec<u64> = Vec::new();
    // Scenarios of one cell share the baseline table, so a single
    // incremental analyzer (per-scenario route-edit deltas, rolled back
    // after each report) replaces per-scenario full re-verification —
    // with byte-identical reports.
    let mut analyzer = DegradationAnalyzer::new(&inst.network, pattern.contention(), &routes);
    for scenario in &scenarios {
        let report = analyzer.analyze(scenario.clone());
        if report.still_contention_free() {
            clean += 1;
        }
        if report.n_unroutable() > 0 {
            disconnected += 1;
            continue;
        }
        // Routable under repair: measure the latency cost closed-loop,
        // with the failed links enforced by the simulator.
        let sim_config = SimConfig::paper()
            .with_link_delays(inst.floorplan.link_lengths(&inst.network))
            .with_failed_links(scenario.failed_links().iter().copied());
        let stats = AppDriver::new(
            &inst.network,
            RoutePolicy::deterministic(report.repaired_routes().clone()),
            sim_config,
        )
        .run(schedule)?;
        execs.push(stats.exec_cycles);
    }
    let mean_exec = if execs.is_empty() {
        None
    } else {
        Some(execs.iter().sum::<u64>() as f64 / execs.len() as f64)
    };
    Ok(Row {
        kind,
        k,
        scenarios: scenarios.len(),
        clean,
        disconnected,
        mean_exec,
    })
}

fn main() -> Result<(), HarnessError> {
    let config = parse_config();
    let benchmark = Benchmark::Cg;
    let schedule = benchmark
        .schedule(
            config.procs,
            &WorkloadParams::paper_default(benchmark).with_iterations(1),
        )
        .expect("paper process counts are valid");
    let pattern = AppPattern::from_schedule(&schedule);
    let seed = 0xF18 ^ (config.procs as u64) ^ ((benchmark as u64) << 8);

    let kinds = [
        NetworkKind::Mesh,
        NetworkKind::Torus,
        NetworkKind::Generated,
    ];
    let cells: Vec<(NetworkKind, usize)> = kinds
        .iter()
        .flat_map(|&kind| (0..=config.max_faults).map(move |k| (kind, k)))
        .collect();
    // Each cell is a pure function of (kind, k, seeds); par_map keeps the
    // sweep order, so output is identical for any worker count.
    let rows = par_map(cells, config.jobs, |(kind, k)| {
        row_for(kind, k, &config, &schedule, &pattern, seed)
    });

    if config.json {
        let mut records = Vec::new();
        for row in rows {
            let row = row?;
            records.push(JsonValue::object([
                ("network", JsonValue::from(row.kind.name())),
                ("faults", JsonValue::from(row.k)),
                ("scenarios", JsonValue::from(row.scenarios)),
                ("contention_free", JsonValue::from(row.clean)),
                ("disconnected", JsonValue::from(row.disconnected)),
                (
                    "mean_exec_cycles",
                    row.mean_exec.map_or(JsonValue::Null, JsonValue::from),
                ),
            ]));
        }
        println!("{}", JsonValue::array(records));
        return Ok(());
    }

    println!(
        "degradation sweep: {} at {} procs, {} sampled scenarios per fault count",
        benchmark.name(),
        config.procs,
        config.scenarios
    );
    println!(
        "  {:<9} {:>6} | {:>10} {:>12} | {:>12} {:>8}",
        "network", "faults", "cont.free", "disconnected", "mean exec", "vs k=0"
    );
    let mut baseline = f64::NAN;
    for row in rows {
        let row = row?;
        if row.k == 0 {
            baseline = row.mean_exec.unwrap_or(f64::NAN);
        }
        let (exec, rel) = match row.mean_exec {
            Some(e) => (format!("{e:.0}"), format!("{:.3}", e / baseline)),
            None => ("-".into(), "-".into()),
        };
        println!(
            "  {:<9} {:>6} | {:>7}/{:<2} {:>12} | {:>12} {:>8}",
            row.kind.name(),
            row.k,
            row.clean,
            row.scenarios,
            row.disconnected,
            exec,
            rel
        );
    }
    println!();
    println!("cont.free = scenarios whose repaired table still satisfies C ∩ R = ∅;");
    println!("mean exec averages the scenarios where every flow stayed routable.");
    Ok(())
}
