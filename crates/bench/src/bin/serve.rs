//! Serve-daemon cache harness: cold-miss vs warm-hit behavior of the
//! content-addressed result cache on the CG16 / MG8 / FFT16 mix.
//!
//! Usage: `serve [--json] [--seed S]`.
//!
//! Same two-channel contract as `perf`:
//!
//! * `--json` (stdout): **deterministic** facts only — per-case job
//!   fingerprint, cache tier of each pass, winner counters, and whether
//!   the warm reply was byte-identical to the cold one (modulo the
//!   `cache` marker). Same seed => identical bytes; CI byte-diffs this
//!   against the checked-in BENCH_7.json and against a rerun.
//! * human mode (stdout) / `--json` companion (stderr): cold and warm
//!   wall times and the speedup ratio, which vary run to run.

use std::time::{Duration, Instant};

use nocsyn_model::format_schedule;
use nocsyn_model::json::JsonValue;
use nocsyn_serve::{CacheTier, ReplyKind, ServeOptions, Server};
use nocsyn_workloads::{Benchmark, WorkloadParams};

/// One benchmark case of the harness.
struct Case {
    name: &'static str,
    benchmark: Benchmark,
    n_procs: usize,
}

const CASES: [Case; 3] = [
    Case {
        name: "CG16",
        benchmark: Benchmark::Cg,
        n_procs: 16,
    },
    Case {
        name: "MG8",
        benchmark: Benchmark::Mg,
        n_procs: 8,
    },
    Case {
        name: "FFT16",
        benchmark: Benchmark::Fft,
        n_procs: 16,
    },
];

struct Outcome {
    name: &'static str,
    fingerprint: String,
    cold_tier: &'static str,
    warm_tier: &'static str,
    switches: u64,
    links: u64,
    byte_identical: bool,
    cold: Duration,
    warm: Duration,
}

fn usage() -> ! {
    eprintln!("usage: serve [--json] [--seed S]");
    std::process::exit(2);
}

struct Options {
    json: bool,
    seed: u64,
}

fn parse_args() -> Options {
    let mut opts = Options {
        json: false,
        seed: 1,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => opts.json = true,
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(s) => opts.seed = s,
                None => usage(),
            },
            _ => usage(),
        }
    }
    opts
}

/// Classifies a reply, panicking on anything but a report (a benchmark
/// request failing is a harness bug, not a measurement).
fn tier(kind: &ReplyKind) -> &'static str {
    match kind {
        ReplyKind::Report(t) => t.label(),
        other => panic!("benchmark request was not served a report: {other:?}"),
    }
}

fn field_u64(line: &str, key: &str) -> u64 {
    nocsyn_model::json::parse(line)
        .expect("reply lines are well-formed")
        .get("report")
        .and_then(|r| r.get(key))
        .and_then(|v| v.as_u64())
        .expect("report carries the counter")
}

fn run_case(server: &Server, case: &Case, seed: u64) -> Outcome {
    let sched = case
        .benchmark
        .schedule(
            case.n_procs,
            &WorkloadParams::paper_default(case.benchmark).with_iterations(1),
        )
        .expect("harness process counts are valid");
    let request = JsonValue::object([
        ("op", JsonValue::from("synth")),
        ("pattern", JsonValue::from(format_schedule(&sched))),
        ("seed", JsonValue::from(seed)),
    ])
    .to_string();

    let started = Instant::now();
    let cold = server.handle_line(&request);
    let cold_elapsed = started.elapsed();
    let started = Instant::now();
    let warm = server.handle_line(&request);
    let warm_elapsed = started.elapsed();

    let fingerprint = nocsyn_model::json::parse(&cold.line)
        .expect("reply lines are well-formed")
        .get("fingerprint")
        .and_then(|v| v.as_str().map(str::to_string))
        .expect("synth replies carry the job fingerprint");
    Outcome {
        name: case.name,
        fingerprint,
        cold_tier: tier(&cold.kind),
        warm_tier: tier(&warm.kind),
        switches: field_u64(&cold.line, "switches"),
        links: field_u64(&cold.line, "links"),
        byte_identical: cold.line.replace("\"cache\":\"miss\"", "\"cache\":\"hit\"") == warm.line,
        cold: cold_elapsed,
        warm: warm_elapsed,
    }
}

fn main() {
    let opts = parse_args();
    let server = Server::new(ServeOptions::default());
    let outcomes: Vec<Outcome> = CASES
        .iter()
        .map(|c| run_case(&server, c, opts.seed))
        .collect();
    // The warm pass must have been pure cache traffic.
    assert!(
        outcomes
            .iter()
            .all(|o| o.warm_tier == CacheTier::Hit.label()),
        "warm pass fell through the cache"
    );

    if opts.json {
        let cases = JsonValue::array(outcomes.iter().map(|o| {
            JsonValue::object([
                ("name", JsonValue::from(o.name)),
                ("fingerprint", JsonValue::from(o.fingerprint.as_str())),
                ("cold", JsonValue::from(o.cold_tier)),
                ("warm", JsonValue::from(o.warm_tier)),
                ("switches", JsonValue::from(o.switches)),
                ("links", JsonValue::from(o.links)),
                ("byte_identical", JsonValue::from(o.byte_identical)),
            ])
        }));
        let doc = JsonValue::object([
            ("bench", JsonValue::from("serve")),
            ("seed", JsonValue::from(opts.seed)),
            ("cases", cases),
        ]);
        println!("{doc}");
        // Timings go to stderr so the byte-compared artifact stays
        // deterministic.
        for o in &outcomes {
            eprintln!(
                "# {}: cold {:.1} ms, warm {:.3} ms",
                o.name,
                o.cold.as_secs_f64() * 1e3,
                o.warm.as_secs_f64() * 1e3,
            );
        }
    } else {
        println!("serve cache (seed {})", opts.seed);
        println!(
            "{:<6} {:>6} {:>6} {:>12} {:>12} {:>10} {:>10}",
            "case", "links", "switch", "cold ms", "warm ms", "speedup", "identical"
        );
        for o in &outcomes {
            let cold_ms = o.cold.as_secs_f64() * 1e3;
            let warm_ms = o.warm.as_secs_f64() * 1e3;
            println!(
                "{:<6} {:>6} {:>6} {:>12.1} {:>12.3} {:>9.0}x {:>10}",
                o.name,
                o.links,
                o.switches,
                cold_ms,
                warm_ms,
                if warm_ms > 0.0 {
                    cold_ms / warm_ms
                } else {
                    0.0
                },
                if o.byte_identical { "yes" } else { "NO" }
            );
        }
    }
}
