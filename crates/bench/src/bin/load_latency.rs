//! The limitation experiment: load-latency curves under traffic the
//! network was *not* designed for.
//!
//! The paper's Section 4.2 hints at this boundary (BT on the CG network
//! degrades ~20%); this binary makes it quantitative with the classic NoC
//! methodology — open-loop uniform-random traffic at increasing injection
//! rates — comparing the mesh (built for any traffic) with the CG-generated
//! network (built for one application). The specialized network should
//! match the mesh at low load and saturate earlier as load grows: the
//! price of deleting the links CG never needed.

use nocsyn_bench::{build_instance, HarnessError, NetworkKind};
use nocsyn_sim::{run_trace, SimConfig};
use nocsyn_workloads::{open_loop_traffic, Benchmark, TrafficPattern, WorkloadParams};

fn main() -> Result<(), HarnessError> {
    let schedule = Benchmark::Cg
        .schedule(16, &WorkloadParams::paper_default(Benchmark::Cg))
        .expect("16 is valid for CG");
    let instances: Vec<_> = [NetworkKind::Mesh, NetworkKind::Generated]
        .into_iter()
        .map(|kind| build_instance(kind, &schedule, 0x10AD).map(|i| (kind, i)))
        .collect::<Result<_, _>>()?;

    println!("uniform-random open-loop traffic on 16 nodes: mean latency (cycles)");
    println!(
        "  {:>9} | {:>10} {:>12} | {:>12}",
        "inj. rate", "mesh", "generated", "gen pays"
    );
    for rate in [0.05f64, 0.20, 0.40, 0.65, 0.90] {
        let trace = open_loop_traffic(16, TrafficPattern::UniformRandom, rate, 30_000, 128, 0xBEEF);
        let mut lat = Vec::new();
        for (_, inst) in &instances {
            let config = SimConfig::paper()
                .with_link_delays(inst.floorplan.link_lengths(&inst.network))
                .with_max_cycles(5_000_000);
            let stats = run_trace(&inst.network, &inst.policy, config, &trace)?;
            assert_eq!(stats.delivered as usize, trace.len());
            lat.push(stats.mean_latency);
        }
        println!(
            "  {:>9.2} | {:>10.0} {:>12.0} | {:>+11.0}%",
            rate,
            lat[0],
            lat[1],
            100.0 * (lat[1] / lat[0] - 1.0)
        );
    }
    println!();
    println!("expected shape: near-equal latency at light load; the generated network —");
    println!("specialized to CG, with ~40% of the mesh's links — saturates first as random");
    println!("load grows. Specialization is a trade, not a free lunch.");
    Ok(())
}
