//! Section 4.2's cross-workload sensitivity experiment: run the FFT and BT
//! traces on the network generated *for CG* (16 nodes) and compare against
//! each trace on its own generated network.
//!
//! The paper reports FFT degrades by less than 2% on the CG network (its
//! row/column all-to-all resembles CG's reduction), while BT suffers about
//! 20% — generated networks tolerate moderate pattern drift but not a
//! different application class.

use nocsyn_bench::{build_instance, complete_routes, HarnessError, NetworkKind};
use nocsyn_floorplan::place;
use nocsyn_sim::{AppDriver, RoutePolicy, SimConfig};
use nocsyn_workloads::{Benchmark, WorkloadParams};

fn main() -> Result<(), HarnessError> {
    let n = 16;
    let cg_sched = Benchmark::Cg
        .schedule(n, &WorkloadParams::paper_default(Benchmark::Cg))
        .expect("16 is valid for CG");
    let host = build_instance(NetworkKind::Generated, &cg_sched, 0xC6)?;
    let synth = host
        .synthesis
        .as_ref()
        .expect("generated instances carry synthesis");
    println!(
        "host network: generated for CG@16 — {} switches, {} links, max degree {}",
        host.network.n_switches(),
        host.network.n_network_links(),
        host.network.max_degree()
    );
    println!();
    println!(
        "  {:<6} | {:>14} | {:>14} | {:>11}",
        "trace", "own net (cyc)", "CG net (cyc)", "degradation"
    );

    for foreign in [Benchmark::Cg, Benchmark::Fft, Benchmark::Bt] {
        let sched = foreign
            .schedule(n, &WorkloadParams::paper_default(foreign))
            .expect("16 is valid for all benchmarks");

        // Native: the foreign trace on its own generated network.
        let native = build_instance(NetworkKind::Generated, &sched, 0xC6 ^ (foreign as u64))?;
        let native_stats = native.simulate(&sched)?;

        // Foreign: the trace on the CG host. Flows CG never performs are
        // routed by shortest path (complete_routes inside build_instance
        // already extended the table, but rebuild against this schedule's
        // flows for clarity).
        let routes = complete_routes(&host.network, &synth.routes)?;
        let floorplan = place(&host.network, 0x711);
        let config = SimConfig::paper().with_link_delays(floorplan.link_lengths(&host.network));
        let foreign_stats =
            AppDriver::new(&host.network, RoutePolicy::deterministic(routes), config)
                .run(&sched)?;

        let degradation = foreign_stats.exec_cycles as f64 / native_stats.exec_cycles as f64 - 1.0;
        println!(
            "  {:<6} | {:>14} | {:>14} | {:>+10.1}%",
            foreign.name(),
            native_stats.exec_cycles,
            foreign_stats.exec_cycles,
            100.0 * degradation
        );
    }
    println!();
    println!("paper reference: FFT < +2% on the CG network; BT ≈ +20%.");
    Ok(())
}
