//! Ablations of the methodology's design choices (DESIGN.md §5):
//!
//! 1. fast vs exact coloring during the search (the paper's central
//!    complexity lever);
//! 2. `Best_Route` indirect routing on/off (Figure 5(e)'s link saving);
//! 3. balance tolerance 0 / 2 / 4;
//! 4. greedy descent vs a true simulated-annealing schedule.
//!
//! Each variant synthesizes every 16-node benchmark and reports final
//! link count, switch count and wall time.

use std::time::Instant;

use nocsyn_synth::{synthesize, AcceptanceRule, AppPattern, ColoringStrategy, SynthesisConfig};
use nocsyn_workloads::{Benchmark, WorkloadParams};

struct Variant {
    name: &'static str,
    config: SynthesisConfig,
}

fn variants() -> Vec<Variant> {
    let base = SynthesisConfig::new().with_max_degree(5).with_seed(0xAB1A);
    vec![
        Variant {
            name: "paper (fast, indirect, bal 2, greedy)",
            config: base.clone(),
        },
        Variant {
            name: "exact coloring during search",
            config: base.clone().with_coloring(ColoringStrategy::Exact),
        },
        Variant {
            name: "no indirect routing (Best_Route off)",
            config: base.clone().with_indirect_routing(false),
        },
        Variant {
            name: "balance tolerance 0",
            config: base.clone().with_balance_tolerance(0),
        },
        Variant {
            name: "balance tolerance 4",
            config: base.clone().with_balance_tolerance(4),
        },
        Variant {
            name: "simulated annealing acceptance",
            config: base.with_acceptance(AcceptanceRule::default_anneal()),
        },
    ]
}

fn main() {
    println!("ablation over all 16-node benchmarks (max degree 5, fixed seed)");
    println!(
        "  {:<40} | {:>6} | {:>8} | {:>9} | {:>9}",
        "variant", "links", "switches", "cont-free", "time (ms)"
    );
    for v in variants() {
        let mut links = 0usize;
        let mut switches = 0usize;
        let mut all_free = true;
        let start = Instant::now();
        for benchmark in Benchmark::ALL {
            let sched = benchmark
                .schedule(16, &WorkloadParams::paper_default(benchmark))
                .expect("16 is valid for all benchmarks");
            let pattern = AppPattern::from_schedule(&sched);
            let result = synthesize(&pattern, &v.config).expect("synthesis succeeds");
            links += result.report.n_links;
            switches += result.report.n_switches;
            all_free &= result.report.contention_free;
        }
        let elapsed = start.elapsed().as_millis();
        println!(
            "  {:<40} | {:>6} | {:>8} | {:>9} | {:>9}",
            v.name, links, switches, all_free, elapsed
        );
    }
    println!();
    println!("expected shape: exact coloring is slower for equal-or-fewer links; disabling");
    println!("indirect routing never reduces links; annealing trades time for occasional wins.");
}
