//! Ablations of the methodology's design choices (DESIGN.md §5):
//!
//! 1. fast vs exact coloring during the search (the paper's central
//!    complexity lever);
//! 2. `Best_Route` indirect routing on/off (Figure 5(e)'s link saving);
//! 3. balance tolerance 0 / 2 / 4;
//! 4. greedy descent vs a true simulated-annealing schedule.
//!
//! Each variant synthesizes every 16-node benchmark and reports final
//! link count, switch count and wall time. Pass `--jobs N` to synthesize
//! the benchmarks of each variant on N worker threads (per-benchmark
//! results are independent, so the table is identical for any N; only
//! the wall-time column changes).

use std::time::Instant;

use nocsyn_engine::par_map;
use nocsyn_synth::{synthesize, AcceptanceRule, AppPattern, ColoringStrategy, SynthesisConfig};
use nocsyn_workloads::{Benchmark, WorkloadParams};

struct Variant {
    name: &'static str,
    config: SynthesisConfig,
}

fn variants() -> Vec<Variant> {
    let base = SynthesisConfig::new().with_max_degree(5).with_seed(0xAB1A);
    vec![
        Variant {
            name: "paper (fast, indirect, bal 2, greedy)",
            config: base.clone(),
        },
        Variant {
            name: "exact coloring during search",
            config: base.clone().with_coloring(ColoringStrategy::Exact),
        },
        Variant {
            name: "no indirect routing (Best_Route off)",
            config: base.clone().with_indirect_routing(false),
        },
        Variant {
            name: "balance tolerance 0",
            config: base.clone().with_balance_tolerance(0),
        },
        Variant {
            name: "balance tolerance 4",
            config: base.clone().with_balance_tolerance(4),
        },
        Variant {
            name: "simulated annealing acceptance",
            config: base.with_acceptance(AcceptanceRule::default_anneal()),
        },
    ]
}

fn main() {
    let jobs = std::env::args()
        .skip(1)
        .skip_while(|a| a != "--jobs")
        .nth(1)
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1);
    println!("ablation over all 16-node benchmarks (max degree 5, fixed seed)");
    println!(
        "  {:<40} | {:>6} | {:>8} | {:>9} | {:>9}",
        "variant", "links", "switches", "cont-free", "time (ms)"
    );
    for v in variants() {
        let start = Instant::now();
        let per_benchmark = par_map(Benchmark::ALL.to_vec(), jobs, |benchmark| {
            let sched = benchmark
                .schedule(16, &WorkloadParams::paper_default(benchmark))
                .expect("16 is valid for all benchmarks");
            let pattern = AppPattern::from_schedule(&sched);
            let result = synthesize(&pattern, &v.config).expect("synthesis succeeds");
            (
                result.report.n_links,
                result.report.n_switches,
                result.report.contention_free,
            )
        });
        let mut links = 0usize;
        let mut switches = 0usize;
        let mut all_free = true;
        for (l, s, free) in per_benchmark {
            links += l;
            switches += s;
            all_free &= free;
        }
        let elapsed = start.elapsed().as_millis();
        println!(
            "  {:<40} | {:>6} | {:>8} | {:>9} | {:>9}",
            v.name, links, switches, all_free, elapsed
        );
    }
    println!();
    println!("expected shape: exact coloring is slower for equal-or-fewer links; disabling");
    println!("indirect routing never reduces links; annealing trades time for occasional wins.");
}
