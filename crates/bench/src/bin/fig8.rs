//! Figure 8 reproduction: total execution time and communication time of
//! mesh, torus and generated networks, normalized to a fully-connected
//! non-blocking crossbar, measured by closed-loop flit-level simulation.
//!
//! Usage: `fig8 [--nodes small|large|both] [--json] [--jobs N]` (default:
//! both, human-readable table; `--json` emits one machine-readable array
//! of row records instead; `--jobs` runs the per-benchmark
//! synthesize-and-simulate pipelines on N worker threads, printing in the
//! paper's order — output identical for any N). Run in release mode; the
//! 16-node FFT simulation covers hundreds of thousands of cycles.

use nocsyn_bench::{build_instance, Fig8Row, HarnessError, NetworkKind};
use nocsyn_engine::par_map;
use nocsyn_model::json::JsonValue;
use nocsyn_sim::ExecutionStats;
use nocsyn_workloads::{Benchmark, WorkloadParams};

fn parse_configs() -> (Vec<bool>, bool, usize) {
    let mut args = std::env::args().skip(1);
    let mut which = "both".to_string();
    let mut json = false;
    let mut jobs = 1usize;
    while let Some(a) = args.next() {
        if a == "--nodes" {
            which = args.next().unwrap_or_else(|| "both".into());
        } else if a == "--json" {
            json = true;
        } else if a == "--jobs" {
            jobs = args
                .next()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n >= 1)
                .unwrap_or_else(|| {
                    eprintln!("--jobs expects a positive integer");
                    std::process::exit(2);
                });
        }
    }
    let configs = match which.as_str() {
        "small" => vec![false],
        "large" => vec![true],
        _ => vec![false, true],
    };
    (configs, json, jobs)
}

fn row_for(
    benchmark: Benchmark,
    large: bool,
) -> Result<(Fig8Row, [ExecutionStats; 4]), HarnessError> {
    let n = benchmark.paper_procs(large);
    let sched = benchmark
        .schedule(n, &WorkloadParams::paper_default(benchmark))
        .expect("paper process counts are valid");
    let seed = 0xF18 ^ (n as u64) ^ ((benchmark as u64) << 8);

    let mut stats = Vec::with_capacity(4);
    for kind in NetworkKind::ALL {
        let inst = build_instance(kind, &sched, seed)?;
        stats.push(inst.simulate(&sched)?);
    }
    let stats: [ExecutionStats; 4] = stats.try_into().expect("four kinds");
    let base_exec = stats[0].exec_cycles as f64;
    let base_comm = stats[0].mean_comm_cycles.max(1.0);
    let rel = |s: &ExecutionStats| {
        (
            s.exec_cycles as f64 / base_exec,
            s.mean_comm_cycles / base_comm,
        )
    };
    let (me, mc) = rel(&stats[1]);
    let (te, tc) = rel(&stats[2]);
    let (ge, gc) = rel(&stats[3]);
    Ok((
        Fig8Row {
            benchmark,
            n_procs: n,
            exec: [me, te, ge],
            comm: [mc, tc, gc],
        },
        stats,
    ))
}

fn main() -> Result<(), HarnessError> {
    let (configs, json, jobs) = parse_configs();
    let combos: Vec<(bool, Benchmark)> = configs
        .iter()
        .flat_map(|&large| Benchmark::ALL.into_iter().map(move |b| (large, b)))
        .collect();
    // Each row is an independent synthesize-and-simulate pipeline; fan
    // them across the worker pool, keeping the paper's row order.
    let results = par_map(combos, jobs, |(large, benchmark)| row_for(benchmark, large));
    let mut results = results.into_iter();
    if json {
        let mut rows = Vec::new();
        for _ in &configs {
            for _ in Benchmark::ALL {
                let (row, stats) = results.next().expect("one row per combo")?;
                let kills: u64 = stats.iter().map(|s| s.packets.deadlock_kills).sum();
                let mut record = row.to_json();
                if let JsonValue::Object(pairs) = &mut record {
                    pairs.push(("deadlock_kills".into(), JsonValue::from(kills)));
                }
                rows.push(record);
            }
        }
        println!("{}", JsonValue::array(rows));
        return Ok(());
    }
    for large in configs {
        let label = if large {
            "Figure 8(b): 16-node configurations"
        } else {
            "Figure 8(a): 8/9-node configurations"
        };
        println!("{label}");
        println!("  times normalized to the non-blocking crossbar (crossbar = 1.00)");
        println!(
            "  {:<5} {:>5} | {:>22} | {:>22} | {:>9}",
            "bench", "procs", "exec  (mesh torus gen)", "comm  (mesh torus gen)", "deadlocks"
        );
        for _ in Benchmark::ALL {
            let (row, stats) = results.next().expect("one row per combo")?;
            let kills: u64 = stats.iter().map(|s| s.packets.deadlock_kills).sum();
            println!(
                "  {:<5} {:>5} |   {:>5.3} {:>5.3} {:>6.3} |   {:>5.3} {:>5.3} {:>6.3} | {:>9}",
                row.benchmark.name(),
                row.n_procs,
                row.exec[0],
                row.exec[1],
                row.exec[2],
                row.comm[0],
                row.comm[1],
                row.comm[2],
                kills
            );
        }
        println!();
    }
    println!("paper reference: generated within 4% of the crossbar everywhere; at 16 nodes");
    println!("CG's generated network cuts comm ~26% and exec ~18% vs the mesh; no deadlocks.");
    Ok(())
}
