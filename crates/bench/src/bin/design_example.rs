//! The worked design example of Section 3.4: the CG benchmark on 16
//! processors (Figures 1, 2 and 5).
//!
//! Reproduces, in order: the contention periods of Figure 1; the Cut 1 vs
//! Cut 2 fast-coloring analysis of Figure 2 (4 links vs 3 links despite
//! more crossing messages); and the full synthesis run to a ≤5-degree
//! network far leaner than the 4x4 mesh, verified contention-free by
//! Theorem 1.

use std::collections::BTreeSet;

use nocsyn_coloring::fast_color;
use nocsyn_floorplan::{mesh_baseline, place};
use nocsyn_model::{Flow, ProcId};
use nocsyn_synth::{synthesize, AppPattern, SynthesisConfig};
use nocsyn_topo::verify_contention_free;
use nocsyn_workloads::figure1;

fn crossing(flows: &BTreeSet<Flow>, side_a: &[ProcId]) -> (BTreeSet<Flow>, BTreeSet<Flow>) {
    let a: BTreeSet<ProcId> = side_a.iter().copied().collect();
    let mut fwd = BTreeSet::new();
    let mut bwd = BTreeSet::new();
    for &f in flows {
        match (a.contains(&f.src), a.contains(&f.dst)) {
            (true, false) => {
                fwd.insert(f);
            }
            (false, true) => {
                bwd.insert(f);
            }
            _ => {}
        }
    }
    (fwd, bwd)
}

fn main() {
    // ------------------------------------------------------------------
    // Figure 1: the CG contention periods.
    // ------------------------------------------------------------------
    let sched = figure1::schedule();
    let cliques = sched.maximum_clique_set();
    println!("Figure 1 — CG@16 contention periods (0-indexed processes):");
    for (i, clique) in cliques.iter().enumerate() {
        println!("  period {}: {} flows: {}", i + 1, clique.len(), clique);
    }
    println!();

    // ------------------------------------------------------------------
    // Figure 2: Cut 1 vs Cut 2.
    // ------------------------------------------------------------------
    let all_flows = sched.all_flows();
    for (name, (a, _b), paper) in [
        ("Cut 1 (procs 1-8 | 9-16)", figure1::cut1(), 4usize),
        ("Cut 2 (procs 1-9 | 10-16)", figure1::cut2(), 3usize),
    ] {
        let (fwd, bwd) = crossing(&all_flows, &a);
        let links = fast_color(&cliques, &fwd, &bwd);
        println!(
            "{name}: {} crossing messages, Fast_Color -> {links} links (paper: {paper})",
            fwd.len() + bwd.len()
        );
        assert_eq!(links, paper, "cut analysis must match the paper");
    }
    println!();

    // ------------------------------------------------------------------
    // Figure 5: full synthesis under max node degree 5.
    // ------------------------------------------------------------------
    let pattern = AppPattern::from_schedule(&sched);
    let config = SynthesisConfig::new().with_max_degree(5).with_seed(0xF15);
    let result = synthesize(&pattern, &config).expect("CG pattern synthesizes");
    println!("synthesis under max node degree 5:");
    println!("{}", result.report);
    println!("report (JSON): {}", result.report.to_json());
    println!();
    println!("{}", result.network);

    let report = verify_contention_free(pattern.contention(), &result.routes);
    println!("Theorem 1 check: {report}");
    assert!(report.is_contention_free());

    let plan = place(&result.network, 0xF15);
    let area = plan.area(&result.network);
    let mesh = mesh_baseline(4, 4);
    println!(
        "area vs 4x4 mesh: switches {:.0}/{:.0} ({:.0}%), link area {:.0}/{:.0} ({:.0}%)",
        area.switch_area,
        mesh.switch_area,
        100.0 * area.switch_area / mesh.switch_area,
        area.link_area,
        mesh.link_area,
        100.0 * area.link_area / mesh.link_area,
    );
    println!();
    println!("paper reference (Figs 5(f), 6(b), 7(b)): ~6 switches, ~50% switch and ~42%");
    println!("link area of the mesh, contention-free for the CG pattern.");
}
