//! Multi-objective sweep (the paper's conclusion: "optimization over
//! multiple objectives"): the resource trade-off curve across switch port
//! budgets for each 16-node benchmark.

use nocsyn_bench::HarnessError;
use nocsyn_synth::{degree_sweep, AppPattern, SynthesisConfig};
use nocsyn_workloads::{Benchmark, WorkloadParams};

fn main() -> Result<(), HarnessError> {
    println!("Pareto frontier of (port budget, switches, links), 16-node configurations");
    for benchmark in Benchmark::ALL {
        let schedule = benchmark
            .schedule(16, &WorkloadParams::paper_default(benchmark))
            .expect("16 is valid for every benchmark");
        let pattern = AppPattern::from_schedule(&schedule);
        let config = SynthesisConfig::new()
            .with_seed(0x9A_u64 ^ (benchmark as u64))
            .with_restarts(8);
        let points =
            degree_sweep(&pattern, [4, 5, 6, 8, 12, 17], &config).map_err(HarnessError::Synth)?;
        println!("  {}:", benchmark.name());
        for p in points {
            println!(
                "    degree ≤ {:>2}: {:>2} switches, {:>2} links{}",
                p.max_degree,
                p.n_switches,
                p.n_links,
                if p.feasible {
                    ""
                } else {
                    "  (constraint NOT met)"
                }
            );
        }
    }
    println!();
    println!("expected shape: relaxing the port budget monotonically shrinks the network,");
    println!("collapsing to the single mega-switch once a switch may host everyone.");
    Ok(())
}
