//! Shared experiment harness for regenerating the paper's tables and
//! figures.
//!
//! Each binary in this crate reproduces one evaluation artifact (see
//! DESIGN.md §4 and EXPERIMENTS.md):
//!
//! * `fig7` — resource (switch/link area) comparison, Figure 7.
//! * `fig8` — performance comparison via flit-level simulation, Figure 8.
//! * `sensitivity` — foreign traces on the CG-generated network
//!   (Section 4.2's cross-workload experiment).
//! * `design_example` — the worked CG design example of Figures 1, 2
//!   and 5.
//! * `ablation` — design-choice ablations from DESIGN.md §5.
//!
//! The library half hosts the plumbing the binaries share: building the
//! four comparison networks for a benchmark, floorplanning them, and
//! running the closed-loop simulation with floorplan-derived link delays.

use nocsyn_floorplan::{mesh_baseline, place, AreaReport, Floorplan};
use nocsyn_model::{Flow, PhaseSchedule};
use nocsyn_sim::{AppDriver, ExecutionStats, RoutePolicy, SimConfig, SimError};
use nocsyn_synth::{synthesize, AppPattern, SynthError, SynthesisConfig, SynthesisResult};
use nocsyn_topo::{regular, Network, RouteTable, TopoError};
use nocsyn_workloads::Benchmark;

/// The four networks the paper compares for every benchmark (Section 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NetworkKind {
    /// The fully-connected non-blocking crossbar: the performance ideal.
    Crossbar,
    /// A 2-D mesh with dimension-order routing: the resource baseline.
    Mesh,
    /// A 2-D torus with (approximated) fully-adaptive routing.
    Torus,
    /// The network synthesized for the benchmark by the methodology.
    Generated,
}

impl NetworkKind {
    /// All four kinds in the paper's plotting order.
    pub const ALL: [NetworkKind; 4] = [
        NetworkKind::Crossbar,
        NetworkKind::Mesh,
        NetworkKind::Torus,
        NetworkKind::Generated,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            NetworkKind::Crossbar => "crossbar",
            NetworkKind::Mesh => "mesh",
            NetworkKind::Torus => "torus",
            NetworkKind::Generated => "generated",
        }
    }
}

/// The mesh/torus grid shape used for `n` processors: the most square
/// factorization (2x4 for 8, 3x3 for 9, 4x4 for 16).
pub fn grid_dims(n: usize) -> (usize, usize) {
    assert!(n > 0, "grid for zero processors");
    let mut r = (n as f64).sqrt().floor() as usize;
    while r > 1 && !n.is_multiple_of(r) {
        r -= 1;
    }
    (r.max(1), n / r.max(1))
}

/// A comparison network instantiated for an experiment: the topology, its
/// routing policy, and its floorplan (which fixes link delays).
#[derive(Debug)]
pub struct Instance {
    /// Which comparison point this is.
    pub kind: NetworkKind,
    /// The network.
    pub network: Network,
    /// Routing policy for simulation.
    pub policy: RoutePolicy,
    /// Placement on the tile grid.
    pub floorplan: Floorplan,
    /// Synthesis output (for `Generated` only).
    pub synthesis: Option<SynthesisResult>,
}

impl Instance {
    /// Area of this instance under the paper's model. Mesh and torus use
    /// their analytic baselines (hand layouts, as in the paper); other
    /// networks use their floorplan.
    pub fn area(&self) -> AreaReport {
        let (rows, cols) = grid_dims(self.network.n_procs());
        match self.kind {
            NetworkKind::Mesh => mesh_baseline(rows, cols),
            NetworkKind::Torus => nocsyn_floorplan::torus_baseline(rows, cols),
            _ => self.floorplan.area(&self.network),
        }
    }

    /// Runs the closed-loop simulation of `schedule` on this instance with
    /// floorplan-derived link delays.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the driver.
    pub fn simulate(&self, schedule: &PhaseSchedule) -> Result<ExecutionStats, SimError> {
        let config =
            SimConfig::paper().with_link_delays(self.floorplan.link_lengths(&self.network));
        AppDriver::new(&self.network, self.policy.clone(), config).run(schedule)
    }
}

/// Errors from experiment setup.
#[derive(Debug)]
pub enum HarnessError {
    /// Topology construction failed.
    Topo(TopoError),
    /// Synthesis failed.
    Synth(SynthError),
    /// Simulation failed.
    Sim(SimError),
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::Topo(e) => write!(f, "topology: {e}"),
            HarnessError::Synth(e) => write!(f, "synthesis: {e}"),
            HarnessError::Sim(e) => write!(f, "simulation: {e}"),
        }
    }
}

impl std::error::Error for HarnessError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HarnessError::Topo(e) => Some(e),
            HarnessError::Synth(e) => Some(e),
            HarnessError::Sim(e) => Some(e),
        }
    }
}

impl HarnessError {
    /// A short, stable, kebab-case identifier for the error class, never
    /// embedding input-derived values (same convention as
    /// `ModelError::fingerprint`). Wrapped errors keep their own
    /// fingerprint.
    pub fn fingerprint(&self) -> &'static str {
        match self {
            HarnessError::Topo(e) => e.fingerprint(),
            HarnessError::Synth(e) => e.fingerprint(),
            HarnessError::Sim(e) => e.fingerprint(),
        }
    }
}

impl From<TopoError> for HarnessError {
    fn from(e: TopoError) -> Self {
        HarnessError::Topo(e)
    }
}
impl From<SynthError> for HarnessError {
    fn from(e: SynthError) -> Self {
        HarnessError::Synth(e)
    }
}
impl From<SimError> for HarnessError {
    fn from(e: SimError) -> Self {
        HarnessError::Sim(e)
    }
}

/// Builds one comparison instance for a schedule.
///
/// For [`NetworkKind::Generated`], the schedule is synthesized with the
/// paper's default configuration (degree ≤ 5, seed fixed per benchmark);
/// flows outside the application pattern are routed by shortest path so
/// foreign traces can also run on the network (the sensitivity
/// experiment).
///
/// # Errors
///
/// [`HarnessError`] if topology construction or synthesis fails.
pub fn build_instance(
    kind: NetworkKind,
    schedule: &PhaseSchedule,
    seed: u64,
) -> Result<Instance, HarnessError> {
    let n = schedule.n_procs();
    let (rows, cols) = grid_dims(n);
    let (network, policy, synthesis) = match kind {
        NetworkKind::Crossbar => {
            let (net, routes) = regular::crossbar(n)?;
            (net, RoutePolicy::deterministic(routes), None)
        }
        NetworkKind::Mesh => {
            let (net, routes) = regular::mesh(rows, cols)?;
            (net, RoutePolicy::deterministic(routes), None)
        }
        NetworkKind::Torus => {
            let (net, xy, yx) = regular::torus_with_alternates(rows, cols)?;
            (net, RoutePolicy::adaptive(vec![xy, yx]), None)
        }
        NetworkKind::Generated => {
            let pattern = AppPattern::from_schedule(schedule);
            let config = SynthesisConfig::new()
                .with_max_degree(5)
                .with_seed(seed)
                .with_restarts(16);
            let result = synthesize(&pattern, &config)?;
            let routes = complete_routes(&result.network, &result.routes)?;
            (
                result.network.clone(),
                RoutePolicy::deterministic(routes),
                Some(result),
            )
        }
    };
    let floorplan = place(&network, seed ^ 0x5EED);
    Ok(Instance {
        kind,
        network,
        policy,
        floorplan,
        synthesis,
    })
}

/// Extends a synthesized route table to cover *all* ordered processor
/// pairs: synthesized routes where they exist, shortest paths elsewhere.
///
/// # Errors
///
/// [`TopoError`] if the network is not strongly connected.
pub fn complete_routes(net: &Network, routes: &RouteTable) -> Result<RouteTable, TopoError> {
    let mut complete = routes.clone();
    for s in 0..net.n_procs() {
        for d in 0..net.n_procs() {
            if s == d {
                continue;
            }
            let flow = Flow::from_indices(s, d);
            if complete.route(flow).is_none() {
                complete.insert(flow, nocsyn_topo::shortest_route(net, flow)?);
            }
        }
    }
    Ok(complete)
}

/// One row of a Figure 7 table: areas normalized to the mesh.
#[derive(Debug, Clone, Copy)]
pub struct Fig7Row {
    /// Benchmark of this row.
    pub benchmark: Benchmark,
    /// Process count.
    pub n_procs: usize,
    /// Generated network switch area / mesh switch area.
    pub gen_switch: f64,
    /// Generated network link area / mesh link area.
    pub gen_link: f64,
    /// Torus link area / mesh link area (switch ratio is always 1).
    pub torus_link: f64,
}

impl Fig7Row {
    /// Renders the row as a JSON record (see `nocsyn_model::json`).
    pub fn to_json(&self) -> nocsyn_model::json::JsonValue {
        use nocsyn_model::json::JsonValue;
        JsonValue::object([
            ("benchmark", JsonValue::from(self.benchmark.name())),
            ("n_procs", JsonValue::from(self.n_procs)),
            ("gen_switch", JsonValue::from(self.gen_switch)),
            ("gen_link", JsonValue::from(self.gen_link)),
            ("torus_link", JsonValue::from(self.torus_link)),
        ])
    }
}

/// One row of a Figure 8 table: times normalized to the crossbar.
#[derive(Debug, Clone, Copy)]
pub struct Fig8Row {
    /// Benchmark of this row.
    pub benchmark: Benchmark,
    /// Process count.
    pub n_procs: usize,
    /// Execution time on [mesh, torus, generated] over crossbar.
    pub exec: [f64; 3],
    /// Communication time on [mesh, torus, generated] over crossbar.
    pub comm: [f64; 3],
}

impl Fig8Row {
    /// Renders the row as a JSON record (see `nocsyn_model::json`).
    pub fn to_json(&self) -> nocsyn_model::json::JsonValue {
        use nocsyn_model::json::JsonValue;
        let triple = |xs: [f64; 3]| JsonValue::array(xs.into_iter().map(JsonValue::from));
        JsonValue::object([
            ("benchmark", JsonValue::from(self.benchmark.name())),
            ("n_procs", JsonValue::from(self.n_procs)),
            ("exec_mesh_torus_gen", triple(self.exec)),
            ("comm_mesh_torus_gen", triple(self.comm)),
        ])
    }
}

pub mod timing {
    //! A plain `std::time::Instant` micro-benchmark harness.
    //!
    //! The workspace carries no external bench framework; each file under
    //! `benches/` (built with `harness = false`) drives this module from
    //! its own `main`. Runs are budgeted by wall time per case, overridable
    //! with `NOCSYN_BENCH_BUDGET_MS`, and cases can be filtered by a
    //! substring argument (`cargo bench -p nocsyn-bench -- contention`).

    use std::time::{Duration, Instant};

    /// Timing summary of one benchmark case.
    #[derive(Debug, Clone)]
    pub struct Sample {
        /// Case name as printed.
        pub name: String,
        /// Measured iterations (excludes the warmup call).
        pub iters: u32,
        /// Mean wall time per iteration.
        pub mean: Duration,
        /// Fastest single iteration.
        pub min: Duration,
    }

    /// Bench runner: holds the per-case time budget and the case filter.
    #[derive(Debug, Clone)]
    pub struct Runner {
        budget: Duration,
        filter: Option<String>,
    }

    impl Runner {
        /// Builds a runner from the process environment: the budget from
        /// `NOCSYN_BENCH_BUDGET_MS` (default 300 ms per case) and the
        /// filter from the first non-flag CLI argument. Flags — including
        /// the `--bench` cargo passes to `harness = false` targets — are
        /// ignored.
        pub fn from_env() -> Self {
            let budget = std::env::var("NOCSYN_BENCH_BUDGET_MS")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .map_or(Duration::from_millis(300), Duration::from_millis);
            let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
            Runner { budget, filter }
        }

        /// Sets the per-case time budget.
        #[must_use]
        pub fn with_budget(mut self, budget: Duration) -> Self {
            self.budget = budget;
            self
        }

        /// Runs one case: a warmup call, then repeated timed calls until
        /// the budget is spent (at least 3, at most 100 000 iterations),
        /// and prints one summary line. Returns `None` when the case is
        /// filtered out.
        pub fn case<T>(&self, name: &str, mut f: impl FnMut() -> T) -> Option<Sample> {
            if let Some(needle) = &self.filter {
                if !name.contains(needle.as_str()) {
                    return None;
                }
            }
            std::hint::black_box(f());
            let mut iters = 0u32;
            let mut total = Duration::ZERO;
            let mut min = Duration::MAX;
            while (total < self.budget && iters < 100_000) || iters < 3 {
                let t = Instant::now();
                std::hint::black_box(f());
                let dt = t.elapsed();
                total += dt;
                min = min.min(dt);
                iters += 1;
            }
            let sample = Sample {
                name: name.to_string(),
                iters,
                mean: total / iters,
                min,
            };
            println!(
                "{:<48} mean {:>12} min {:>12} ({} iters)",
                sample.name,
                fmt_duration(sample.mean),
                fmt_duration(sample.min),
                sample.iters
            );
            Some(sample)
        }
    }

    /// Formats a duration with a unit matched to its magnitude.
    pub fn fmt_duration(d: Duration) -> String {
        let ns = d.as_nanos();
        if ns < 10_000 {
            format!("{ns} ns")
        } else if ns < 10_000_000 {
            format!("{:.2} us", ns as f64 / 1_000.0)
        } else if ns < 10_000_000_000 {
            format!("{:.2} ms", ns as f64 / 1_000_000.0)
        } else {
            format!("{:.2} s", ns as f64 / 1_000_000_000.0)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn case_runs_at_least_three_iters() {
            let runner = Runner {
                budget: Duration::ZERO,
                filter: None,
            };
            let mut count = 0u32;
            let sample = runner.case("tiny", || count += 1).unwrap();
            assert_eq!(sample.iters, 3);
            // 3 measured + 1 warmup.
            assert_eq!(count, 4);
            assert!(sample.min <= sample.mean);
        }

        #[test]
        fn filter_skips_non_matching_cases() {
            let runner = Runner {
                budget: Duration::ZERO,
                filter: Some("match-me".into()),
            };
            assert!(runner.case("other", || ()).is_none());
            assert!(runner.case("does-match-me-too", || ()).is_some());
        }

        #[test]
        fn durations_format_with_scaled_units() {
            assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
            assert_eq!(fmt_duration(Duration::from_micros(120)), "120.00 us");
            assert_eq!(fmt_duration(Duration::from_millis(45)), "45.00 ms");
            assert_eq!(fmt_duration(Duration::from_secs(12)), "12.00 s");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocsyn_workloads::WorkloadParams;

    #[test]
    fn harness_error_delegates_fingerprint_and_keeps_source() {
        use std::error::Error as _;
        let inner = SynthError::EmptyPattern;
        let e = HarnessError::from(inner.clone());
        assert_eq!(e.fingerprint(), inner.fingerprint());
        assert!(e
            .fingerprint()
            .chars()
            .all(|c| c.is_ascii_lowercase() || c == '-'));
        let src = e.source().expect("wrapped error is the source");
        assert_eq!(src.to_string(), inner.to_string());
        let boxed: Box<dyn std::error::Error + Send + Sync> = Box::new(e);
        assert!(boxed.to_string().starts_with("synthesis:"));
    }

    #[test]
    fn grid_dims_match_paper_configs() {
        assert_eq!(grid_dims(8), (2, 4));
        assert_eq!(grid_dims(9), (3, 3));
        assert_eq!(grid_dims(16), (4, 4));
        assert_eq!(grid_dims(7), (1, 7));
    }

    #[test]
    fn all_instances_build_for_cg8() {
        let sched = Benchmark::Cg
            .schedule(
                8,
                &WorkloadParams::paper_default(Benchmark::Cg).with_iterations(1),
            )
            .unwrap();
        for kind in NetworkKind::ALL {
            let inst = build_instance(kind, &sched, 1).unwrap();
            assert!(inst.network.is_strongly_connected(), "{kind:?}");
            let area = inst.area();
            assert!(area.switch_area > 0.0);
        }
    }

    #[test]
    fn generated_instance_is_contention_free_and_lean() {
        let sched = Benchmark::Cg
            .schedule(
                16,
                &WorkloadParams::paper_default(Benchmark::Cg).with_iterations(1),
            )
            .unwrap();
        let inst = build_instance(NetworkKind::Generated, &sched, 2).unwrap();
        let synth = inst.synthesis.as_ref().unwrap();
        assert!(synth.report.contention_free);
        // Fewer switches than the 16-switch mesh.
        assert!(inst.network.n_switches() < 16);
    }

    #[test]
    fn complete_routes_covers_all_pairs() {
        let sched = Benchmark::Mg
            .schedule(
                8,
                &WorkloadParams::paper_default(Benchmark::Mg).with_iterations(1),
            )
            .unwrap();
        let inst = build_instance(NetworkKind::Generated, &sched, 3).unwrap();
        let synth = inst.synthesis.as_ref().unwrap();
        let complete = complete_routes(&inst.network, &synth.routes).unwrap();
        assert_eq!(complete.len(), 8 * 7);
        complete.validate(&inst.network).unwrap();
    }

    #[test]
    fn simulate_runs_on_small_schedule() {
        let sched = Benchmark::Cg
            .schedule(
                8,
                &WorkloadParams::paper_default(Benchmark::Cg)
                    .with_iterations(1)
                    .with_bytes(64),
            )
            .unwrap();
        let inst = build_instance(NetworkKind::Crossbar, &sched, 4).unwrap();
        let stats = inst.simulate(&sched).unwrap();
        assert!(stats.exec_cycles > 0);
        assert!(stats.delivered > 0);
    }
}
