//! Simulator conservation properties: every injected message is delivered
//! exactly once, on any topology, with or without deadlock recovery.

use nocsyn_check::{check_assert_eq, check_n, u32_in, u64_in, usize_in, vec_of};

use nocsyn::model::Flow;
use nocsyn::sim::{Engine, SimConfig};
use nocsyn::topo::{regular, shortest_route};

/// Open-loop injection on a mesh: all messages delivered, none lost or
/// duplicated, regardless of injection times and sizes.
#[test]
fn mesh_delivers_every_message() {
    check_n(
        "mesh_delivers_every_message",
        24,
        (
            usize_in(2..4),
            usize_in(2..4),
            vec_of(
                (
                    usize_in(0..16),
                    usize_in(0..16),
                    u32_in(1..2_048),
                    u64_in(0..500),
                ),
                1..24,
            ),
        ),
        |(rows, cols, messages)| {
            let (net, routes) = regular::mesh(*rows, *cols).unwrap();
            let n = rows * cols;
            let mut eng = Engine::new(&net, SimConfig::paper());
            let mut injected = 0u64;
            for &(s, d, bytes, at) in messages {
                let (s, d) = (s % n, d % n);
                if s == d {
                    continue;
                }
                let flow = Flow::from_indices(s, d);
                eng.inject(flow, bytes, routes.route(flow).unwrap(), at, 0);
                injected += 1;
            }
            eng.run_until_idle().unwrap();
            let stats = eng.packet_stats();
            check_assert_eq!(stats.delivered, injected);
            check_assert_eq!(stats.deadlock_kills, 0, "DOR meshes cannot deadlock");
            Ok(())
        },
    );
}

/// Even with a 1-VC configuration engineered to deadlock, regressive
/// recovery eventually delivers everything exactly once.
#[test]
fn recovery_preserves_conservation() {
    check_n(
        "recovery_preserves_conservation",
        24,
        u64_in(0..50),
        |&seed| {
            // Ring of 3 switches with crossing long messages (cf. the unit
            // test in the engine); vary payloads by seed.
            use nocsyn::model::ProcId;
            use nocsyn::topo::{Channel, Network, Route};
            let mut net = Network::new(6);
            let s: Vec<_> = (0..3).map(|_| net.add_switch()).collect();
            let l01 = net.add_link(s[0], s[1]).unwrap();
            let l12 = net.add_link(s[1], s[2]).unwrap();
            let l20 = net.add_link(s[2], s[0]).unwrap();
            for (p, &switch) in s.iter().enumerate() {
                net.attach(ProcId(p), switch).unwrap();
            }
            for p in 3..6 {
                net.attach(ProcId(p), s[p - 3]).unwrap();
            }
            let inj = |p: usize| net.injection_channel(ProcId(p)).unwrap();
            let ej = |p: usize| net.ejection_channel(ProcId(p)).unwrap();
            let routes = [
                (
                    Flow::from_indices(0, 5),
                    Route::new(vec![
                        inj(0),
                        Channel::forward(l01),
                        Channel::forward(l12),
                        ej(5),
                    ]),
                ),
                (
                    Flow::from_indices(1, 3),
                    Route::new(vec![
                        inj(1),
                        Channel::forward(l12),
                        Channel::forward(l20),
                        ej(3),
                    ]),
                ),
                (
                    Flow::from_indices(2, 4),
                    Route::new(vec![
                        inj(2),
                        Channel::forward(l20),
                        Channel::forward(l01),
                        ej(4),
                    ]),
                ),
            ];
            let bytes = 512 + (seed as u32 % 7) * 256;
            let config = SimConfig::paper()
                .with_vcs(1)
                .with_deadlock_timeout(150)
                .with_max_cycles(5_000_000);
            let mut eng = Engine::new(&net, config);
            for (f, r) in &routes {
                r.validate(&net, *f).unwrap();
                eng.inject(*f, bytes, r, 0, 0);
            }
            eng.run_until_idle().unwrap();
            check_assert_eq!(eng.packet_stats().delivered, 3);
            Ok(())
        },
    );
}

/// Latency on an unloaded path is exactly pipeline depth plus
/// serialization: sum of link delays + flits - 1.
#[test]
fn unloaded_latency_formula() {
    check_n(
        "unloaded_latency_formula",
        24,
        (u32_in(1..4_096), u32_in(1..6)),
        |&(payload, delay)| {
            let (net, _) = regular::crossbar(2).unwrap();
            let flow = Flow::from_indices(0, 1);
            let route = shortest_route(&net, flow).unwrap();
            let config = SimConfig::paper().with_link_delays(vec![delay, delay]);
            let n_flits = config.flits_for(payload);
            let mut eng = Engine::new(&net, config);
            eng.inject(flow, payload, &route, 0, 0);
            eng.run_until_idle().unwrap();
            let expected = u64::from(delay) * 2 + n_flits - 1;
            check_assert_eq!(eng.packet_stats().max_latency, expected);
            Ok(())
        },
    );
}
