//! Integration tests of the `nocsyn-engine` batch job API against the
//! real paper workloads: outcomes in job order, per-job isolation of
//! failures and deadlines, and full-lifecycle telemetry.

use std::sync::Arc;

use nocsyn::engine::{CollectSink, Engine, EngineEvent, Job, JobError, JobStatus, RetryPolicy};
use nocsyn::model::PhaseSchedule;
use nocsyn::synth::{
    synthesize, AppPattern, SynthesisConfig, SynthesisRequest, SynthesisRequestBuilder,
};
use nocsyn::workloads::{Benchmark, WorkloadParams};

fn benchmark_builder(benchmark: Benchmark, n: usize, restarts: usize) -> SynthesisRequestBuilder {
    let sched = benchmark
        .schedule(
            n,
            &WorkloadParams::paper_default(benchmark).with_iterations(1),
        )
        .expect("paper process counts are valid");
    SynthesisRequest::builder(AppPattern::from_schedule(&sched))
        .config(SynthesisConfig::new().with_seed(0xBA7C ^ (benchmark as u64)))
        .restarts(restarts)
}

fn benchmark_job(benchmark: Benchmark, n: usize, restarts: usize) -> Job {
    Job::new(
        format!("{}{n}", benchmark.name()),
        benchmark_builder(benchmark, n, restarts)
            .build()
            .expect("a nonzero restart count builds"),
    )
}

/// A multi-benchmark batch: every outcome comes back in job order,
/// completed, and equal to what the sequential `synthesize` loop selects
/// for the same job.
#[test]
fn batch_across_benchmarks_matches_sequential_per_job() {
    let jobs: Vec<Job> = [Benchmark::Cg, Benchmark::Mg, Benchmark::Fft]
        .into_iter()
        .map(|b| benchmark_job(b, 8, 4))
        .collect();
    let expected: Vec<_> = jobs
        .iter()
        .map(|j| synthesize(j.request.pattern(), j.request.config()).unwrap())
        .collect();

    let outcomes = Engine::new().with_workers(4).run(jobs);
    assert_eq!(outcomes.len(), 3);
    let names: Vec<&str> = outcomes.iter().map(|o| o.name.as_str()).collect();
    assert_eq!(names, ["CG8", "MG8", "FFT8"]);
    for (outcome, sequential) in outcomes.iter().zip(&expected) {
        assert_eq!(outcome.status, JobStatus::Completed, "{}", outcome.name);
        assert_eq!(outcome.attempts_completed, 4, "{}", outcome.name);
        let result = outcome.result.as_ref().expect("completed job has result");
        assert_eq!(result.report, sequential.report, "{}", outcome.name);
        assert_eq!(result.routes, sequential.routes, "{}", outcome.name);
    }
}

/// One poisoned job (empty pattern) and one zero-deadline job do not
/// disturb a healthy neighbor in the same batch.
#[test]
fn failures_and_deadlines_stay_contained_per_job() {
    let empty = AppPattern::from_schedule(&PhaseSchedule::new(0));
    let jobs = vec![
        Job::new(
            "empty",
            SynthesisRequest::builder(empty)
                .restarts(2)
                .build()
                .expect("builds"),
        ),
        Job::new(
            "CG8",
            benchmark_builder(Benchmark::Cg, 8, 2)
                .deadline_ms(0)
                .build()
                .expect("builds"),
        ),
        benchmark_job(Benchmark::Mg, 8, 2),
    ];
    let outcomes = Engine::new().with_workers(2).run(jobs);

    assert!(matches!(outcomes[0].status, JobStatus::Failed(_)));
    assert!(outcomes[0].result.is_none());

    assert_eq!(outcomes[1].status, JobStatus::DeadlineExceeded);
    assert!(outcomes[1].result.is_none());
    assert_eq!(outcomes[1].attempts_completed, 0);

    assert_eq!(outcomes[2].status, JobStatus::Completed);
    assert!(outcomes[2].result.is_some());
    assert_eq!(outcomes[2].attempts_completed, 2);
}

/// A panic injected into one attempt of one job fails that job alone —
/// its siblings complete with results bit-identical to a panic-free run
/// of the same batch.
#[test]
fn injected_panic_is_isolated_and_siblings_are_bit_identical() {
    let build_jobs = |poison: bool| {
        let mut jobs = vec![
            benchmark_job(Benchmark::Cg, 8, 3),
            benchmark_job(Benchmark::Mg, 8, 3),
            benchmark_job(Benchmark::Fft, 8, 3),
        ];
        if poison {
            jobs[1] = benchmark_job(Benchmark::Mg, 8, 3).with_injected_panic(1);
        }
        jobs
    };
    let clean = Engine::new().with_workers(4).run(build_jobs(false));
    let sink = Arc::new(CollectSink::new());
    let poisoned = Engine::new()
        .with_workers(4)
        .with_sink(sink.clone())
        .run(build_jobs(true));

    // The poisoned job fails with the structured panic payload...
    match &poisoned[1].status {
        JobStatus::Failed(JobError::Panicked { message }) => {
            assert!(message.contains("injected panic"), "{message}");
        }
        other => panic!("expected a panicked failure, got {other:?}"),
    }
    assert!(poisoned[1].result.is_none());

    // ...and each sibling's result is bit-identical to the clean batch.
    for i in [0usize, 2] {
        assert_eq!(poisoned[i].status, JobStatus::Completed, "job {i}");
        let (a, b) = (
            clean[i].result.as_ref().expect("clean job completed"),
            poisoned[i].result.as_ref().expect("sibling completed"),
        );
        assert_eq!(a.report, b.report, "job {i}");
        assert_eq!(a.routes, b.routes, "job {i}");
        assert_eq!(a.placement, b.placement, "job {i}");
    }

    // The panic surfaced as exactly one structured event on the MG job.
    let events = sink.events();
    let panics: Vec<&EngineEvent> = events
        .iter()
        .filter(|e| e.kind() == "attempt_panicked")
        .collect();
    assert_eq!(panics.len(), 1);
    assert_eq!(panics[0].job(), "MG8");
}

/// A retry policy turns the same injected panic into a completed job:
/// the attempt re-runs with a deterministically reseeded search.
#[test]
fn retry_policy_recovers_an_injected_panic() {
    let job = benchmark_job(Benchmark::Cg, 8, 3)
        .with_injected_panic(0)
        .with_retry(RetryPolicy::retries(2));
    let outcome = Engine::new()
        .with_workers(2)
        .run(vec![job])
        .pop()
        .expect("one outcome");
    assert_eq!(outcome.status, JobStatus::Completed);
    assert_eq!(outcome.attempts_completed, 3);
    assert!(outcome.result.is_some());
}

/// Telemetry over a batch: per job exactly one started and one finished
/// event, one restart event per completed attempt, and a deadline event
/// only for the job that expired.
#[test]
fn batch_telemetry_is_complete_and_attributed() {
    let sink = Arc::new(CollectSink::new());
    let jobs = vec![
        benchmark_job(Benchmark::Cg, 8, 3),
        Job::new(
            "MG8",
            benchmark_builder(Benchmark::Mg, 8, 3)
                .deadline_ms(0)
                .build()
                .expect("builds"),
        ),
    ];
    let outcomes = Engine::new()
        .with_workers(2)
        .with_sink(sink.clone())
        .run(jobs);
    assert_eq!(outcomes[0].status, JobStatus::Completed);
    assert_eq!(outcomes[1].status, JobStatus::DeadlineExceeded);

    let events = sink.events();
    let count = |job: &str, kind: &str| {
        events
            .iter()
            .filter(|e| e.job() == job && e.kind() == kind)
            .count()
    };
    assert_eq!(count("CG8", "job_started"), 1);
    assert_eq!(count("CG8", "restart_completed"), 3);
    assert_eq!(count("CG8", "job_finished"), 1);
    assert_eq!(count("CG8", "deadline_exceeded"), 0);

    assert_eq!(count("MG8", "job_started"), 1);
    assert_eq!(count("MG8", "restart_completed"), 0);
    assert_eq!(count("MG8", "deadline_exceeded"), 1);
    assert_eq!(count("MG8", "job_finished"), 1);

    // The finished event for the expired job reports the degraded status
    // and a null result in its JSON rendering.
    let finished_mg = events
        .iter()
        .find(|e| e.job() == "MG8" && e.kind() == "job_finished")
        .expect("mg8 finished event exists");
    match finished_mg {
        EngineEvent::JobFinished { status, links, .. } => {
            assert_eq!(status, "deadline_exceeded");
            assert!(links.is_none());
        }
        other => panic!("unexpected event {other:?}"),
    }
    let json = finished_mg.to_json().to_string();
    assert!(json.contains(r#""status":"deadline_exceeded""#), "{json}");
    assert!(json.contains(r#""links":null"#), "{json}");
}
