//! Adversarial coverage for the proof-carrying synthesis pipeline.
//!
//! Two halves:
//!
//! * **Golden round-trips** — for every golden workload (CG16, MG8,
//!   FFT16) on every network family (mesh, torus, generated), build the
//!   contention-freedom certificate and push it through the independent
//!   `nocsyn-certify` checker. Emit -> certify must come back clean,
//!   whether the certificate proves freedom (generated networks) or
//!   correctly proves *non*-freedom (baselines with shared links).
//! * **Tampered certificates** — every tamper class the threat model
//!   names (dropped obligation, forged clique, omitted route resource,
//!   fingerprint mismatch) must be rejected with its stable typed
//!   fingerprint.

use nocsyn::certify::{check_certificate, CheckOptions};
use nocsyn::model::{format_schedule, Certificate, Flow};
use nocsyn::synth::{synthesize, AppPattern, SynthesisConfig};
use nocsyn::topo::{build_certificate, regular, RouteTable};
use nocsyn::workloads::{Benchmark, WorkloadParams};

/// The golden workloads: benchmark, process count, light parameters.
fn golden() -> Vec<(Benchmark, usize)> {
    vec![
        (Benchmark::Cg, 16),
        (Benchmark::Mg, 8),
        (Benchmark::Fft, 16),
    ]
}

fn pattern_and_text(benchmark: Benchmark, n: usize) -> (AppPattern, String) {
    let params = WorkloadParams::paper_default(benchmark).with_iterations(1);
    let schedule = benchmark
        .schedule(n, &params)
        .expect("golden size is valid");
    let text = format_schedule(&schedule);
    (AppPattern::from_schedule(&schedule), text)
}

/// Restricts a full all-pairs route table (mesh/torus baselines) to the
/// flows the pattern actually performs, mirroring the CLI's
/// `policy_table`.
fn restrict(routes: &RouteTable, pattern: &AppPattern) -> RouteTable {
    let mut table = RouteTable::new();
    for &flow in pattern.flows() {
        let route = routes.route(flow).expect("baseline covers every pair");
        table.insert(flow, route.clone());
    }
    table
}

fn certify(pattern: &AppPattern, text: &str, routes: &RouteTable) -> Certificate {
    let cert = build_certificate(
        pattern.n_procs(),
        pattern.cliques(),
        pattern.contention(),
        routes,
        None,
    );
    let summary = check_certificate(text, &cert.to_json(), None, &CheckOptions::new())
        .expect("emitted certificate must validate");
    assert_eq!(summary.contention_free, cert.contention_free);
    assert_eq!(summary.n_routes, routes.len());
    cert
}

#[test]
fn golden_workloads_round_trip_on_every_network_family() {
    for (benchmark, n) in golden() {
        let (pattern, text) = pattern_and_text(benchmark, n);
        let (rows, cols) = (if n == 8 { 2 } else { 4 }, 4);

        let (_, mesh_routes) = regular::mesh(rows, cols).expect("mesh builds");
        certify(&pattern, &text, &restrict(&mesh_routes, &pattern));

        let (_, torus_routes) = regular::torus(rows, cols).expect("torus builds");
        certify(&pattern, &text, &restrict(&torus_routes, &pattern));

        let config = SynthesisConfig::new().with_seed(0x51).with_restarts(2);
        let result = synthesize(&pattern, &config).expect("synthesis succeeds");
        let cert = certify(&pattern, &text, &result.routes);
        // The synthesized network is the one the paper's methodology
        // guarantees: its certificate must prove freedom.
        assert!(
            cert.contention_free,
            "{benchmark:?}: generated network must certify contention-free"
        );
        assert!(cert.witnesses.is_empty());
    }
}

#[test]
fn synthesis_result_certificates_match_build_certificate() {
    let (pattern, text) = pattern_and_text(Benchmark::Mg, 8);
    let config = SynthesisConfig::new().with_seed(0x52).with_restarts(2);
    let result = synthesize(&pattern, &config).expect("synthesis succeeds");
    let via_result = result.certificate(&pattern, None);
    let via_builder = build_certificate(
        pattern.n_procs(),
        pattern.cliques(),
        pattern.contention(),
        &result.routes,
        None,
    );
    assert_eq!(via_result.to_json(), via_builder.to_json());
    check_certificate(&text, &via_result.to_json(), None, &CheckOptions::new())
        .expect("result certificate validates");
}

/// A validated golden certificate to tamper with, plus its pattern text.
fn golden_cert() -> (Certificate, String) {
    let (pattern, text) = pattern_and_text(Benchmark::Cg, 16);
    let config = SynthesisConfig::new().with_seed(0x53).with_restarts(2);
    let result = synthesize(&pattern, &config).expect("synthesis succeeds");
    let cert = certify(&pattern, &text, &result.routes);
    (cert, text)
}

fn expect_fingerprint(cert: &Certificate, text: &str, fingerprint: &str) {
    let err = check_certificate(text, &cert.to_json(), None, &CheckOptions::new())
        .expect_err("tampered certificate must be rejected");
    assert_eq!(err.fingerprint(), fingerprint);
}

#[test]
fn dropped_obligation_is_rejected() {
    let (mut cert, text) = golden_cert();
    assert!(!cert.obligations.is_empty());
    cert.obligations.pop();
    // Struct-level tampering re-renders with a fresh (valid) binding, so
    // the rejection comes from the obligation arithmetic itself.
    expect_fingerprint(&cert, &text, "cert-obligation-missing");
}

#[test]
fn forged_clique_is_rejected() {
    let (mut cert, text) = golden_cert();
    cert.cliques
        .push(vec![Flow::from_indices(0, 1), Flow::from_indices(1, 0)]);
    expect_fingerprint(&cert, &text, "cert-clique-mismatch");
}

#[test]
fn omitted_route_resource_is_rejected() {
    let (mut cert, text) = golden_cert();
    let (flow, mut channels) = cert
        .routes
        .iter()
        .find(|(_, chans)| !chans.is_empty())
        .map(|(f, c)| (*f, c.clone()))
        .expect("some route crosses a channel");
    channels.pop();
    cert.routes.insert(flow, channels);
    expect_fingerprint(&cert, &text, "cert-crossing-mismatch");
}

#[test]
fn fingerprint_mismatch_is_rejected() {
    let (cert, text) = golden_cert();
    let rendered = cert.to_json();
    // Textual tampering leaves the embedded binding stale: the checker
    // must refuse before any set arithmetic runs.
    let tampered = rendered.replacen("\"contention_free\":true", "\"contention_free\":false", 1);
    assert_ne!(rendered, tampered, "tamper site must exist");
    let err = check_certificate(&text, &tampered, None, &CheckOptions::new())
        .expect_err("stale binding must be rejected");
    assert_eq!(err.fingerprint(), "cert-binding-mismatch");
}

#[test]
fn certificates_are_byte_deterministic_per_seed() {
    let (pattern, text) = pattern_and_text(Benchmark::Fft, 16);
    let config = SynthesisConfig::new().with_seed(0x54).with_restarts(2);
    let a = synthesize(&pattern, &config).expect("synthesis succeeds");
    let b = synthesize(&pattern, &config).expect("synthesis succeeds");
    let cert_a = a.certificate(&pattern, None).to_json();
    let cert_b = b.certificate(&pattern, None).to_json();
    assert_eq!(
        cert_a, cert_b,
        "same seed must give byte-identical certificates"
    );
    check_certificate(&text, &cert_a, None, &CheckOptions::new()).expect("validates");
}
