//! Workspace-wide error-uniformity contract: every public error type
//! implements `std::error::Error` (so it rides in a `Box<dyn Error>`),
//! renders a non-empty lowercase `Display`, and exposes a stable
//! kebab-case `fingerprint()` that never embeds input-derived values.

use std::error::Error;

use nocsyn::engine::JobError;
use nocsyn::model::{parse_schedule, Flow, ModelError, ProcId};
use nocsyn::sim::SimError;
use nocsyn::synth::{RequestBuildError, SynthError};
use nocsyn::topo::TopoError;
use nocsyn::workloads::WorkloadError;
use nocsyn_check::CaseError;

/// A fingerprint is a stable identifier, not a message: short,
/// lowercase, kebab-case, no digits smuggled in from the input.
fn assert_fingerprint_shape(fp: &str) {
    assert!(!fp.is_empty());
    assert!(fp.len() <= 40, "fingerprint too long: {fp}");
    assert!(
        fp.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
        "fingerprint not kebab-case: {fp}"
    );
}

/// Every error crosses an API boundary as a trait object without losing
/// its message.
fn assert_boxable(err: impl Error + Send + Sync + 'static, fingerprint: &str) {
    assert_fingerprint_shape(fingerprint);
    let display = err.to_string();
    let boxed: Box<dyn Error + Send + Sync> = Box::new(err);
    assert!(!boxed.to_string().is_empty());
    assert_eq!(boxed.to_string(), display);
}

#[test]
fn every_public_error_type_is_uniform() {
    let e = ModelError::SelfLoop { proc: ProcId(3) };
    assert_boxable(e.clone(), e.fingerprint());

    let e = TopoError::Unreachable {
        flow: Flow::from_indices(0, 1),
    };
    assert_boxable(e.clone(), e.fingerprint());

    let e = SimError::CycleCapExceeded { cycles: 10 };
    assert_boxable(e.clone(), e.fingerprint());

    let e = SynthError::EmptyPattern;
    assert_boxable(e.clone(), e.fingerprint());

    let e = RequestBuildError::ZeroRestarts;
    assert_boxable(e, e.fingerprint());
    let e = RequestBuildError::ZeroClusters;
    assert_boxable(e, e.fingerprint());

    let e = WorkloadError::NotPowerOfTwo { n_procs: 9 };
    assert_boxable(e.clone(), e.fingerprint());

    let e = JobError::Panicked {
        message: "boom".into(),
    };
    assert_boxable(e.clone(), e.fingerprint());

    let e = parse_schedule("procs 0\n").unwrap_err();
    assert_boxable(e.clone(), e.fingerprint());

    let e = CaseError::Fail("property violated".into());
    assert_boxable(e.clone(), e.fingerprint());
}

#[test]
fn fingerprints_never_embed_values() {
    // Two errors of the same class but different payloads share one id.
    let a = WorkloadError::TooFewProcs {
        n_procs: 1,
        minimum: 4,
    };
    let b = WorkloadError::TooFewProcs {
        n_procs: 3,
        minimum: 16,
    };
    assert_eq!(a.fingerprint(), b.fingerprint());
    assert_ne!(a.to_string(), b.to_string());

    let a = TopoError::Unreachable {
        flow: Flow::from_indices(0, 1),
    };
    let b = TopoError::Unreachable {
        flow: Flow::from_indices(7, 2),
    };
    assert_eq!(a.fingerprint(), b.fingerprint());
}

#[test]
fn wrapper_errors_delegate_fingerprint_and_source() {
    // SynthError::Materialize wraps TopoError and keeps it as `source()`;
    // JobError::Synth delegates its fingerprint to the synthesis error.
    let inner = TopoError::DegenerateShape { what: "x" };
    let synth = SynthError::from(inner.clone());
    assert_eq!(synth.fingerprint(), "materialize");
    let src = synth.source().expect("materialize keeps its cause");
    assert_eq!(src.to_string(), inner.to_string());

    let job = JobError::from(synth.clone());
    assert_eq!(job.fingerprint(), synth.fingerprint());
    assert_eq!(
        job.source().expect("job error keeps its cause").to_string(),
        synth.to_string()
    );

    // Parse errors delegate to their kind.
    let e = parse_schedule("procs 99999999999\n").unwrap_err();
    assert_eq!(e.fingerprint(), e.kind.fingerprint());
    assert_eq!(e.fingerprint(), "limit-exceeded");
}

#[test]
fn fingerprints_are_distinct_within_a_type() {
    let ids = [
        ModelError::InvertedInterval {
            start: nocsyn::model::Time::new(5),
            finish: nocsyn::model::Time::new(1),
        }
        .fingerprint(),
        ModelError::SelfLoop { proc: ProcId(0) }.fingerprint(),
        ModelError::ProcOutOfRange {
            proc: ProcId(9),
            n_procs: 4,
        }
        .fingerprint(),
        ModelError::DuplicateSourceInPhase { proc: ProcId(0) }.fingerprint(),
        ModelError::DuplicateDestinationInPhase { proc: ProcId(0) }.fingerprint(),
    ];
    let unique: std::collections::BTreeSet<_> = ids.iter().collect();
    assert_eq!(unique.len(), ids.len(), "colliding fingerprints: {ids:?}");
}
