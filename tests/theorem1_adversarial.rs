//! Adversarial tests of the Theorem 1 checker on hand-built networks:
//! routings constructed to violate `C ∩ R = ∅` must be reported contended
//! with the exact shared channels, and routings constructed to satisfy it
//! must pass — the checker cannot be fooled in either direction.

use nocsyn::model::{ContentionSet, Flow, Message, ProcId, Trace};
use nocsyn::topo::{
    intersects, verify_contention_free, Channel, ConflictSet, Network, Route, RouteTable,
};

/// Two switches, two processors on each, `n_links` parallel links between
/// them: the smallest network where pipe width decides contention.
fn dumbbell(n_links: usize) -> (Network, Vec<nocsyn::topo::LinkId>) {
    let mut net = Network::new(4);
    let s0 = net.add_switch();
    let s1 = net.add_switch();
    let links = (0..n_links)
        .map(|_| net.add_link(s0, s1).unwrap())
        .collect();
    net.attach(ProcId(0), s0).unwrap();
    net.attach(ProcId(1), s0).unwrap();
    net.attach(ProcId(2), s1).unwrap();
    net.attach(ProcId(3), s1).unwrap();
    (net, links)
}

/// Flows 0->2 and 1->3, live at the same time: `C` holds exactly their
/// pair.
fn crossing_contention() -> (Trace, Flow, Flow) {
    let mut t = Trace::new(4);
    t.push(Message::new(ProcId(0), ProcId(2), 0, 100).unwrap())
        .unwrap();
    t.push(Message::new(ProcId(1), ProcId(3), 50, 150).unwrap())
        .unwrap();
    (t, Flow::from_indices(0, 2), Flow::from_indices(1, 3))
}

fn route_over(net: &Network, src: usize, dst: usize, link: nocsyn::topo::LinkId) -> Route {
    Route::new(vec![
        net.injection_channel(ProcId(src)).unwrap(),
        Channel::forward(link),
        net.ejection_channel(ProcId(dst)).unwrap(),
    ])
}

/// Forcing both contending flows onto the same link makes `C ∩ R ≠ ∅`:
/// the checker must report exactly that pair, with the shared channel as
/// witness.
#[test]
fn shared_link_is_reported_contended() {
    let (net, links) = dumbbell(1);
    let (trace, fa, fb) = crossing_contention();
    let contention = trace.contention_set();
    assert_eq!(contention.len(), 1, "C is exactly the crossing pair");

    let mut routes = RouteTable::new();
    routes.insert(fa, route_over(&net, 0, 2, links[0]));
    routes.insert(fb, route_over(&net, 1, 3, links[0]));
    routes.validate(&net).unwrap();

    let report = verify_contention_free(&contention, &routes);
    assert!(!report.is_contention_free());
    assert_eq!(report.len(), 1);
    let w = &report.witnesses()[0];
    assert_eq!((w.flow_a, w.flow_b), (fa, fb));
    assert_eq!(w.shared, vec![Channel::forward(links[0])]);

    // The materialized conflict-set view agrees.
    assert!(intersects(&contention, &ConflictSet::from_routes(&routes)));
}

/// Widening the pipe to two links and splitting the flows across them
/// makes the same pattern contention-free — the constructed routing must
/// pass both checker views.
#[test]
fn disjoint_links_pass_the_checker() {
    let (net, links) = dumbbell(2);
    let (trace, fa, fb) = crossing_contention();
    let contention = trace.contention_set();

    let mut routes = RouteTable::new();
    routes.insert(fa, route_over(&net, 0, 2, links[0]));
    routes.insert(fb, route_over(&net, 1, 3, links[1]));
    routes.validate(&net).unwrap();

    let report = verify_contention_free(&contention, &routes);
    assert!(
        report.is_contention_free(),
        "unexpected witnesses: {report}"
    );
    assert!(!intersects(&contention, &ConflictSet::from_routes(&routes)));
}

/// Theorem 1 only requires `C ∩ R = ∅`: flows whose routes share a link
/// but never overlap in time (the pair is outside `C`) must pass even on
/// the single-link network.
#[test]
fn sequential_flows_may_share_a_link() {
    let (net, links) = dumbbell(1);
    let mut t = Trace::new(4);
    t.push(Message::new(ProcId(0), ProcId(2), 0, 100).unwrap())
        .unwrap();
    t.push(Message::new(ProcId(1), ProcId(3), 200, 300).unwrap())
        .unwrap();
    let contention = t.contention_set();
    assert!(contention.is_empty(), "sequential messages never enter C");

    let mut routes = RouteTable::new();
    routes.insert(Flow::from_indices(0, 2), route_over(&net, 0, 2, links[0]));
    routes.insert(Flow::from_indices(1, 3), route_over(&net, 1, 3, links[0]));
    routes.validate(&net).unwrap();

    // R is non-empty, but C ∩ R = ∅.
    assert!(!ConflictSet::from_routes(&routes).is_empty());
    assert!(verify_contention_free(&contention, &routes).is_contention_free());
}

/// A contention pair whose flows share only an endpoint switch (not a
/// channel) is not a resource conflict: switches are not the contended
/// resource in the paper's model, channels are.
#[test]
fn shared_switch_without_shared_channel_is_free() {
    let (net, links) = dumbbell(2);
    let mut t = Trace::new(4);
    // 0->2 and 1->2 overlap: both end at proc 2, but we give 1->2 the
    // reverse direction of the second link... they still share proc 2's
    // ejection channel, so use 2->0 and 2->1 sources instead: both start
    // at switch s1 and fan out to distinct destinations over distinct
    // links.
    t.push(Message::new(ProcId(2), ProcId(0), 0, 100).unwrap())
        .unwrap();
    t.push(Message::new(ProcId(3), ProcId(1), 0, 100).unwrap())
        .unwrap();
    let contention = t.contention_set();
    assert_eq!(contention.len(), 1);

    let mut routes = RouteTable::new();
    routes.insert(
        Flow::from_indices(2, 0),
        Route::new(vec![
            net.injection_channel(ProcId(2)).unwrap(),
            Channel::backward(links[0]),
            net.ejection_channel(ProcId(0)).unwrap(),
        ]),
    );
    routes.insert(
        Flow::from_indices(3, 1),
        Route::new(vec![
            net.injection_channel(ProcId(3)).unwrap(),
            Channel::backward(links[1]),
            net.ejection_channel(ProcId(1)).unwrap(),
        ]),
    );
    routes.validate(&net).unwrap();

    assert!(verify_contention_free(&contention, &routes).is_contention_free());
}

/// Opposite directions of the *same* physical link are distinct channels:
/// counter-rotating flows on one link must not be flagged.
#[test]
fn opposite_directions_do_not_conflict() {
    let (net, links) = dumbbell(1);
    let mut t = Trace::new(4);
    t.push(Message::new(ProcId(0), ProcId(2), 0, 100).unwrap())
        .unwrap();
    t.push(Message::new(ProcId(2), ProcId(0), 0, 100).unwrap())
        .unwrap();
    let contention = t.contention_set();
    assert_eq!(contention.len(), 1);

    let mut routes = RouteTable::new();
    routes.insert(Flow::from_indices(0, 2), route_over(&net, 0, 2, links[0]));
    routes.insert(
        Flow::from_indices(2, 0),
        Route::new(vec![
            net.injection_channel(ProcId(2)).unwrap(),
            Channel::backward(links[0]),
            net.ejection_channel(ProcId(0)).unwrap(),
        ]),
    );
    routes.validate(&net).unwrap();

    assert!(verify_contention_free(&contention, &routes).is_contention_free());
}

/// An adversarial contention set naming unrouted flows is ignored, but as
/// soon as the routes appear the verdict flips: the checker tracks the
/// route table, not just the pattern.
#[test]
fn verdict_follows_the_route_table() {
    let (net, links) = dumbbell(1);
    let (_, fa, fb) = crossing_contention();
    let mut contention = ContentionSet::new();
    contention.insert(fa, fb);

    let mut routes = RouteTable::new();
    assert!(verify_contention_free(&contention, &routes).is_contention_free());

    routes.insert(fa, route_over(&net, 0, 2, links[0]));
    assert!(verify_contention_free(&contention, &routes).is_contention_free());

    routes.insert(fb, route_over(&net, 1, 3, links[0]));
    assert!(!verify_contention_free(&contention, &routes).is_contention_free());
}
