//! Differential test of the incremental Theorem-1 checker: long random
//! route-edit sequences over real workload contention sets, with the
//! incremental state compared against a from-scratch `C ∩ R` recompute
//! (`verify_contention_free`) **after every single step**.
//!
//! Each workload runs `CASES × STEPS_PER_CASE = 64 × 160 = 10,240`
//! randomized edit steps through `nocsyn-check`, so a divergence panics
//! with a `NOCSYN_CHECK_SEED=<seed>` replay recipe and a shrunk edit
//! script.

use std::collections::BTreeSet;

use nocsyn_check::{check_assert_eq, check_n, usize_in, vec_of};
use nocsyn_model::Flow;
use nocsyn_synth::AppPattern;
use nocsyn_topo::{
    regular, shortest_route_avoiding, verify_contention_free, IncrementalChecker, LinkId, Network,
    RouteTable, SwitchId,
};
use nocsyn_workloads::{Benchmark, WorkloadParams};

/// Edit scripts per workload (the `nocsyn-check` case count).
const CASES: usize = 64;
/// Edits per script; `CASES * STEPS_PER_CASE` must stay >= 10_000.
const STEPS_PER_CASE: usize = 160;

/// One encoded edit: `(op, raw_flow, raw_param)`, reduced modulo the
/// workload's flow and link counts when applied.
type RawEdit = (usize, usize, usize);

/// Applies one edit to both the incremental checker and the mirror
/// table, keeping the two in lock-step.
fn apply_edit(
    net: &Network,
    baseline: &RouteTable,
    flows: &[Flow],
    checker: &mut IncrementalChecker,
    mirror: &mut RouteTable,
    (op, raw_flow, raw_param): RawEdit,
) {
    let flow = flows[raw_flow % flows.len()];
    match op % 4 {
        // Re-install the baseline (dimension-order) route.
        0 => {
            let route = baseline
                .route(flow)
                .expect("baseline routes every workload flow")
                .clone();
            checker.set_route(flow, route.clone());
            mirror.insert(flow, route);
        }
        // Detour: shortest path avoiding one link. When avoidance
        // disconnects the flow (e.g. its attachment link), the edit
        // degrades to a route removal — still a valid table state.
        1 => {
            let avoid: BTreeSet<LinkId> = [LinkId(raw_param % net.n_links())].into();
            match shortest_route_avoiding(net, flow, &avoid, &BTreeSet::new()) {
                Ok(route) => {
                    checker.set_route(flow, route.clone());
                    mirror.insert(flow, route);
                }
                Err(_) => {
                    checker.clear_route(flow);
                    mirror.remove(flow);
                }
            }
        }
        // Unroute the flow outright.
        2 => {
            checker.clear_route(flow);
            mirror.remove(flow);
        }
        // Detour around a switch — longer reroutes than op 1, and a
        // guaranteed-removal path for flows homed on that switch.
        _ => {
            let avoid: BTreeSet<SwitchId> = [SwitchId(raw_param % net.n_switches())].into();
            match shortest_route_avoiding(net, flow, &BTreeSet::new(), &avoid) {
                Ok(route) => {
                    checker.set_route(flow, route.clone());
                    mirror.insert(flow, route);
                }
                Err(_) => {
                    checker.clear_route(flow);
                    mirror.remove(flow);
                }
            }
        }
    }
}

/// Runs the differential property for one workload pattern on one
/// network: every edit step must leave the incremental checker equal to
/// the exact checker on the mirrored table.
fn differential_suite(
    name: &'static str,
    benchmark: Benchmark,
    n_procs: usize,
    net: Network,
    baseline: RouteTable,
) {
    let schedule = benchmark
        .schedule(
            n_procs,
            &WorkloadParams::paper_default(benchmark).with_iterations(1),
        )
        .expect("paper process counts are valid");
    let pattern = AppPattern::from_schedule(&schedule);
    let contention = pattern.contention();
    let flows: Vec<Flow> = pattern.flows().to_vec();
    assert!(!flows.is_empty(), "{name}: workload pattern has no flows");

    let gen = vec_of(
        (usize_in(0..4), usize_in(0..4096), usize_in(0..4096)),
        STEPS_PER_CASE..STEPS_PER_CASE + 1,
    );
    check_n(name, CASES, gen, |edits| {
        // Start from the full baseline table so scripts mutate a live,
        // mostly-routed network rather than an empty one.
        let mut checker = IncrementalChecker::with_routes(contention, &baseline);
        let mut mirror = baseline.clone();
        for &edit in edits {
            apply_edit(&net, &baseline, &flows, &mut checker, &mut mirror, edit);
            check_assert_eq!(
                checker.report(),
                verify_contention_free(contention, &mirror),
                "incremental state diverged from the from-scratch C ∩ R \
                 recompute after edit {edit:?}"
            );
        }
        // The checker's own table must have tracked the mirror too.
        check_assert_eq!(*checker.routes(), mirror.clone());
        Ok(())
    });
}

#[test]
fn cg16_incremental_matches_exact_checker() {
    let (net, routes) = regular::mesh(4, 4).expect("4x4 mesh builds");
    differential_suite(
        "cg16_incremental_matches_exact_checker",
        Benchmark::Cg,
        16,
        net,
        routes,
    );
}

#[test]
fn mg8_incremental_matches_exact_checker() {
    let (net, routes) = regular::crossbar(8).expect("8-proc crossbar builds");
    differential_suite(
        "mg8_incremental_matches_exact_checker",
        Benchmark::Mg,
        8,
        net,
        routes,
    );
}

#[test]
fn fft16_incremental_matches_exact_checker() {
    let (net, routes) = regular::torus(4, 4).expect("4x4 torus builds");
    differential_suite(
        "fft16_incremental_matches_exact_checker",
        Benchmark::Fft,
        16,
        net,
        routes,
    );
}
