//! End-to-end integration: workload generation → contention model →
//! synthesis → verification → floorplan → simulation, across crates.

use nocsyn::floorplan::place;
use nocsyn::sim::{AppDriver, RoutePolicy, SimConfig};
use nocsyn::synth::{synthesize, AppPattern, SynthesisConfig};
use nocsyn::topo::verify_contention_free;
use nocsyn::workloads::{Benchmark, WorkloadParams};

/// Light parameters so debug-mode simulation stays fast.
fn light(benchmark: Benchmark) -> WorkloadParams {
    WorkloadParams::paper_default(benchmark)
        .with_iterations(1)
        .with_bytes(256)
        .with_compute(100)
}

fn fast_config(seed: u64) -> SynthesisConfig {
    SynthesisConfig::new().with_seed(seed).with_restarts(2)
}

#[test]
fn every_benchmark_synthesizes_and_simulates_small() {
    for benchmark in Benchmark::ALL {
        let n = benchmark.paper_procs(false);
        let schedule = benchmark.schedule(n, &light(benchmark)).unwrap();
        let pattern = AppPattern::from_schedule(&schedule);
        let result = synthesize(&pattern, &fast_config(1)).unwrap();

        // Structural validity.
        assert!(result.network.is_strongly_connected(), "{benchmark}");
        result.routes.validate(&result.network).unwrap();

        // Theorem 1 (independent re-check, not the report flag).
        let check = verify_contention_free(pattern.contention(), &result.routes);
        assert!(check.is_contention_free(), "{benchmark}: {check}");

        // Simulation delivers every message with no deadlock.
        let plan = place(&result.network, 2);
        let sim = SimConfig::paper().with_link_delays(plan.link_lengths(&result.network));
        let stats = AppDriver::new(
            &result.network,
            RoutePolicy::deterministic(result.routes.clone()),
            sim,
        )
        .run(&schedule)
        .unwrap();
        let expected: u64 = schedule.iter().map(|p| p.len() as u64).sum();
        assert_eq!(stats.delivered, expected, "{benchmark}");
        assert_eq!(stats.packets.deadlock_kills, 0, "{benchmark}");
    }
}

#[test]
fn generated_network_never_uses_more_switches_than_procs() {
    for benchmark in [Benchmark::Cg, Benchmark::Mg] {
        let n = benchmark.paper_procs(true);
        let schedule = benchmark.schedule(n, &light(benchmark)).unwrap();
        let result = synthesize(&AppPattern::from_schedule(&schedule), &fast_config(3)).unwrap();
        assert!(result.network.n_switches() <= n);
        assert!(result.report.constraints_met);
    }
}

#[test]
fn synthesis_is_deterministic_per_seed_across_the_stack() {
    let schedule = Benchmark::Cg.schedule(8, &light(Benchmark::Cg)).unwrap();
    let pattern = AppPattern::from_schedule(&schedule);
    let a = synthesize(&pattern, &fast_config(7)).unwrap();
    let b = synthesize(&pattern, &fast_config(7)).unwrap();
    assert_eq!(a.network, b.network);
    assert_eq!(a.routes, b.routes);
    assert_eq!(a.placement, b.placement);
}

#[test]
fn tighter_degree_constraints_cost_resources() {
    // Relaxing the degree bound can only reduce (or keep) the number of
    // switches needed.
    let schedule = Benchmark::Cg.schedule(16, &light(Benchmark::Cg)).unwrap();
    let pattern = AppPattern::from_schedule(&schedule);
    let tight = synthesize(&pattern, &fast_config(5).with_max_degree(4)).unwrap();
    let loose = synthesize(&pattern, &fast_config(5).with_max_degree(16)).unwrap();
    assert!(loose.network.n_switches() <= tight.network.n_switches());
    // With degree 16, the megaswitch itself satisfies the constraint.
    assert_eq!(loose.network.n_switches(), 1);
}
