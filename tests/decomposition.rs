//! Decomposition-mode integration: worker-count invariance of the
//! rendered report, global Theorem-1 equivalence of the stitched
//! network, and the certificate round trip through `nocsyn certify`.

use nocsyn::cli;
use nocsyn::engine::{Engine, Job};
use nocsyn::model::format_schedule;
use nocsyn::serve::synth_json_object;
use nocsyn::synth::{AppPattern, SynthesisConfig, SynthesisMode, SynthesisRequest};
use nocsyn::topo::verify_contention_free;
use nocsyn::workloads::{clustered_permutation_schedule, WorkloadParams};

/// The 64-node locality-structured pattern the decompose bench sweeps:
/// block-local permutations plus a thin cross-block tail.
fn clustered64() -> AppPattern {
    let sched = clustered_permutation_schedule(
        64,
        16,
        2,
        3,
        0xC105,
        &WorkloadParams::default().with_bytes(64),
    );
    AppPattern::from_schedule(&sched)
}

fn decomposed_request(pattern: AppPattern) -> SynthesisRequest {
    SynthesisRequest::builder(pattern)
        .config(SynthesisConfig::new().with_seed(65))
        .restarts(2)
        .mode(SynthesisMode::Decomposed { clusters: None })
        .build()
        .expect("a decomposed request builds")
}

#[test]
fn decomposed_report_is_identical_across_worker_counts() {
    let request = decomposed_request(clustered64());
    let run = |workers: usize| {
        let outcome = Engine::new()
            .with_workers(workers)
            .run(vec![Job::new("clus64", request.clone())])
            .pop()
            .expect("one outcome");
        synth_json_object(&request, &outcome)
    };
    let sequential = run(1);
    let parallel = run(4);
    assert_eq!(
        sequential, parallel,
        "the decomposed report must not depend on the worker count"
    );
    assert!(
        sequential.contains("\"mode\":\"decomposed\""),
        "{sequential}"
    );
    assert!(sequential.contains("\"clusters\":4"), "{sequential}");
}

#[test]
fn stitched_network_matches_fresh_theorem1_verification() {
    let pattern = clustered64();
    let request = decomposed_request(pattern.clone());
    let outcome = Engine::new()
        .run(vec![Job::new("clus64", request)])
        .pop()
        .expect("one outcome");
    let result = outcome.result.as_ref().expect("job completed");

    // The stitched global network must agree with an independent
    // Theorem-1 check, not just its own report flag.
    let check = verify_contention_free(pattern.contention(), &result.routes);
    assert!(check.is_contention_free(), "{check}");
    assert_eq!(result.report.contention_free, check.is_contention_free());
    assert!(result.network.is_strongly_connected());
    result.routes.validate(&result.network).expect("routes fit");
    assert!(outcome.decomposition.is_some(), "decomposition summary set");
}

#[test]
fn decomposed_cert_round_trips_through_certify() {
    let dir = std::env::temp_dir();
    let pattern_path = dir.join("nocsyn-test-decomp-pattern.txt");
    let cert_path = dir.join("nocsyn-test-decomp-cert.json");
    let sched = clustered_permutation_schedule(
        64,
        16,
        2,
        3,
        0xC105,
        &WorkloadParams::default().with_bytes(64),
    );
    std::fs::write(&pattern_path, format_schedule(&sched)).expect("temp dir writable");

    let args: Vec<String> = [
        "synth",
        pattern_path.to_str().expect("utf-8 temp path"),
        "--decompose",
        "--restarts",
        "2",
        "--seed",
        "65",
        "--emit-cert",
        cert_path.to_str().expect("utf-8 temp path"),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let out = cli::run(&args).expect("decomposed synth succeeds");
    assert!(out.contains("decomposed: 4 clusters"), "{out}");
    assert!(out.contains("contention-free: true"), "{out}");

    let certify: Vec<String> = [
        "certify",
        pattern_path.to_str().expect("utf-8 temp path"),
        cert_path.to_str().expect("utf-8 temp path"),
        "--json",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let verdict = cli::run(&certify).expect("certificate checks");
    assert!(
        verdict.starts_with("{\"command\":\"certify\",\"valid\":true"),
        "{verdict}"
    );
    assert!(verdict.contains("\"contention_free\":true"), "{verdict}");
}
