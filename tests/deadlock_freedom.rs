//! Deadlock behavior of synthesized networks: the paper reports "no
//! deadlocks were detected" across its evaluation; we can go further and
//! *prove* static freedom for most generated route tables, and show the
//! simulator's regressive recovery covers the rest.

use nocsyn::sim::{AppDriver, RoutePolicy, SimConfig};
use nocsyn::synth::{synthesize, AppPattern, SynthesisConfig};
use nocsyn::topo::{is_deadlock_free, ChannelDependencyGraph};
use nocsyn::workloads::{Benchmark, WorkloadParams};

fn light(benchmark: Benchmark) -> WorkloadParams {
    WorkloadParams::paper_default(benchmark)
        .with_iterations(1)
        .with_bytes(512)
        .with_compute(50)
}

#[test]
fn synthesized_routes_are_statically_or_dynamically_deadlock_free() {
    for benchmark in Benchmark::ALL {
        let n = benchmark.paper_procs(false);
        let schedule = benchmark.schedule(n, &light(benchmark)).unwrap();
        let pattern = AppPattern::from_schedule(&schedule);
        let result = synthesize(
            &pattern,
            &SynthesisConfig::new().with_seed(0xDF).with_restarts(2),
        )
        .unwrap();

        if is_deadlock_free(&result.routes) {
            continue; // statically proven: nothing more to check
        }
        // A CDG cycle exists; the paper's defense is 3 VCs + regressive
        // recovery. The application must still complete, and with the
        // paper's VC budget no kill should actually fire for these
        // patterns (matching "no deadlocks were detected").
        let stats = AppDriver::new(
            &result.network,
            RoutePolicy::deterministic(result.routes.clone()),
            SimConfig::paper(),
        )
        .run(&schedule)
        .unwrap();
        assert_eq!(
            stats.packets.deadlock_kills, 0,
            "{benchmark}: recovery fired despite the paper's VC budget"
        );
    }
}

#[test]
fn cdg_witness_cycles_are_real_cycles() {
    // Whenever check_acyclic reports a cycle, the witness must be a
    // closed walk over actual dependencies.
    let (_, routes) = nocsyn::topo::regular::torus(1, 5).unwrap();
    let cdg = ChannelDependencyGraph::from_routes(&routes);
    let cycle = cdg.check_acyclic().expect_err("5-ring wraps");
    assert!(cycle.len() >= 4);
    assert_eq!(cycle.first(), cycle.last());
    for w in cycle.windows(2) {
        // Each consecutive pair must be a dependency of some route.
        let dependent = routes
            .iter()
            .any(|(_, r)| r.hops().windows(2).any(|h| h[0] == w[0] && h[1] == w[1]));
        assert!(
            dependent,
            "witness edge {} -> {} is not a dependency",
            w[0], w[1]
        );
    }
}
