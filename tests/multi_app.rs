//! Multi-application synthesis: one network provisioned for a set of
//! characterized applications (the design point motivated by the paper's
//! §4.2 sensitivity experiment).

use nocsyn::floorplan::place;
use nocsyn::sim::{AppDriver, RoutePolicy, SimConfig};
use nocsyn::synth::{synthesize, AppPattern, SynthesisConfig};
use nocsyn::topo::verify_contention_free;
use nocsyn::workloads::{Benchmark, WorkloadParams};

fn light(benchmark: Benchmark) -> WorkloadParams {
    WorkloadParams::paper_default(benchmark)
        .with_iterations(1)
        .with_bytes(256)
        .with_compute(100)
}

#[test]
fn merged_network_is_contention_free_for_each_member() {
    let cg = Benchmark::Cg.schedule(16, &light(Benchmark::Cg)).unwrap();
    let mg = Benchmark::Mg.schedule(16, &light(Benchmark::Mg)).unwrap();
    let p_cg = AppPattern::from_schedule(&cg);
    let p_mg = AppPattern::from_schedule(&mg);
    let merged = AppPattern::merged([&p_cg, &p_mg]);

    let config = SynthesisConfig::new().with_seed(0x3A).with_restarts(2);
    let result = synthesize(&merged, &config).unwrap();
    assert!(result.network.is_strongly_connected());
    result.routes.validate(&result.network).unwrap();

    // Contention-free for each application individually.
    for (name, pattern) in [("CG", &p_cg), ("MG", &p_mg)] {
        let report = verify_contention_free(pattern.contention(), &result.routes);
        assert!(report.is_contention_free(), "{name}: {report}");
    }

    // Both applications simulate cleanly on the shared fabric.
    let plan = place(&result.network, 5);
    for schedule in [&cg, &mg] {
        let sim = SimConfig::paper().with_link_delays(plan.link_lengths(&result.network));
        let stats = AppDriver::new(
            &result.network,
            RoutePolicy::deterministic(result.routes.clone()),
            sim,
        )
        .run(schedule)
        .unwrap();
        assert_eq!(stats.packets.deadlock_kills, 0);
        let expected: u64 = schedule.iter().map(|p| p.len() as u64).sum();
        assert_eq!(stats.delivered, expected);
    }
}

#[test]
fn merged_network_needs_no_more_than_sum_of_parts() {
    // Sharing pays: the merged network must not exceed the combined
    // resources of the two single-app networks.
    let cg = Benchmark::Cg.schedule(8, &light(Benchmark::Cg)).unwrap();
    let mg = Benchmark::Mg.schedule(8, &light(Benchmark::Mg)).unwrap();
    let p_cg = AppPattern::from_schedule(&cg);
    let p_mg = AppPattern::from_schedule(&mg);
    let config = SynthesisConfig::new().with_seed(0x3B).with_restarts(2);

    let merged = synthesize(&AppPattern::merged([&p_cg, &p_mg]), &config).unwrap();
    let solo_cg = synthesize(&p_cg, &config).unwrap();
    let solo_mg = synthesize(&p_mg, &config).unwrap();
    assert!(
        merged.network.n_network_links()
            <= solo_cg.network.n_network_links() + solo_mg.network.n_network_links(),
        "merged {} vs {} + {}",
        merged.network.n_network_links(),
        solo_cg.network.n_network_links(),
        solo_mg.network.n_network_links()
    );
    assert!(merged.network.n_switches() <= 8);
}
