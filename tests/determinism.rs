//! Determinism golden tests: the hermetic in-repo PRNG makes the whole
//! synthesis pipeline reproducible — same seed, same annealing
//! trajectory, same topology, byte for byte.

use nocsyn::engine::{Engine, JobStatus};
use nocsyn::synth::{synthesize, AppPattern, SynthesisConfig, SynthesisResult};
use nocsyn::workloads::{Benchmark, WorkloadParams};

/// Structural fingerprint of a synthesized network: switch count, link
/// count, the width of every switch-to-switch pipe, and the placement.
type Fingerprint = (usize, usize, Vec<(usize, usize, usize)>, Vec<usize>);

fn fingerprint(result: &SynthesisResult) -> Fingerprint {
    let net = &result.network;
    let mut pipes = Vec::new();
    let switches: Vec<_> = net.switch_ids().collect();
    for (i, &a) in switches.iter().enumerate() {
        for &b in &switches[i + 1..] {
            let width = net.links_between(a, b);
            if width > 0 {
                pipes.push((a.index(), b.index(), width));
            }
        }
    }
    (
        net.n_switches(),
        net.n_network_links(),
        pipes,
        result.placement.clone(),
    )
}

fn cg16_pattern() -> AppPattern {
    let sched = Benchmark::Cg
        .schedule(
            16,
            &WorkloadParams::paper_default(Benchmark::Cg).with_iterations(1),
        )
        .expect("16 is valid for CG");
    AppPattern::from_schedule(&sched)
}

/// The paper's worked example (CG on 16 processors), synthesized twice
/// with the same seed, yields identical topology fingerprints, identical
/// routes, and identical search statistics.
#[test]
fn cg16_same_seed_same_network() {
    let pattern = cg16_pattern();
    let config = SynthesisConfig::new().with_seed(0xD5EED).with_restarts(2);
    let a = synthesize(&pattern, &config).unwrap();
    let b = synthesize(&pattern, &config).unwrap();

    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert_eq!(a.routes, b.routes);
    assert_eq!(a.report, b.report);
}

/// Distinct seeds still synthesize valid contention-free networks (smoke
/// check: determinism must not come from ignoring the seed).
#[test]
fn cg16_distinct_seeds_are_independent() {
    let pattern = cg16_pattern();
    let mut fingerprints = Vec::new();
    for seed in [1u64, 2, 3] {
        let config = SynthesisConfig::new().with_seed(seed).with_restarts(1);
        let result = synthesize(&pattern, &config).unwrap();
        assert!(result.network.is_strongly_connected(), "seed {seed}");
        assert!(result.report.contention_free, "seed {seed}");
        fingerprints.push(fingerprint(&result));
    }
    // Re-running any of the seeds reproduces its own fingerprint.
    let again = synthesize(
        &pattern,
        &SynthesisConfig::new().with_seed(2).with_restarts(1),
    )
    .unwrap();
    assert_eq!(fingerprint(&again), fingerprints[1]);
}

/// The same holds on a second benchmark shape (MG at 8 processors) with
/// the default restart budget, covering the multi-restart selection path.
#[test]
fn mg8_same_seed_same_network() {
    let sched = Benchmark::Mg
        .schedule(
            8,
            &WorkloadParams::paper_default(Benchmark::Mg).with_iterations(1),
        )
        .expect("8 is valid for MG");
    let pattern = AppPattern::from_schedule(&sched);
    let config = SynthesisConfig::new().with_seed(7).with_restarts(4);
    let a = synthesize(&pattern, &config).unwrap();
    let b = synthesize(&pattern, &config).unwrap();
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert_eq!(a.routes, b.routes);
}

fn mg8_pattern() -> AppPattern {
    let sched = Benchmark::Mg
        .schedule(
            8,
            &WorkloadParams::paper_default(Benchmark::Mg).with_iterations(1),
        )
        .expect("8 is valid for MG");
    AppPattern::from_schedule(&sched)
}

/// The parallel engine's restart portfolio selects the *bit-identical*
/// golden topology for any worker count — on CG16 and MG8, jobs=1 versus
/// jobs=4 — and matches the sequential `synthesize` loop exactly.
#[test]
fn engine_golden_fingerprints_jobs1_vs_jobs4() {
    for (name, pattern) in [("cg16", cg16_pattern()), ("mg8", mg8_pattern())] {
        let config = SynthesisConfig::new().with_seed(0xD5EED).with_restarts(8);
        let sequential = synthesize(&pattern, &config).unwrap();
        let golden = fingerprint(&sequential);
        for workers in [1usize, 4] {
            let outcome = Engine::new()
                .with_workers(workers)
                .synthesize(&pattern, &config, None);
            assert_eq!(outcome.status, JobStatus::Completed, "{name} x{workers}");
            let result = outcome.result.expect("completed job has a result");
            assert_eq!(fingerprint(&result), golden, "{name} x{workers}");
            assert_eq!(result.routes, sequential.routes, "{name} x{workers}");
            assert_eq!(result.report, sequential.report, "{name} x{workers}");
        }
    }
}

/// A 0 ms deadline cancels the portfolio before any restart runs: the
/// outcome degrades to `DeadlineExceeded` with no result — no panic, and
/// no leaked threads (the engine joins its scoped workers before
/// returning, so the process exits cleanly).
#[test]
fn engine_zero_deadline_cancels_without_panicking() {
    let outcome = Engine::new().with_workers(4).synthesize(
        &cg16_pattern(),
        &SynthesisConfig::new().with_restarts(8),
        Some(std::time::Duration::ZERO),
    );
    assert_eq!(outcome.status, JobStatus::DeadlineExceeded);
    assert!(outcome.result.is_none());
    assert_eq!(outcome.attempts_completed, 0);
    assert_eq!(outcome.attempts_total, 8);
}

/// Regression: `restarts = 0` used to panic via `best.expect(...)` deep
/// in the restart loop; the builder now clamps it to one run.
#[test]
fn zero_restarts_synthesizes_instead_of_panicking() {
    let config = SynthesisConfig::new().with_seed(3).with_restarts(0);
    assert_eq!(config.restarts(), 1);
    let result = synthesize(&cg16_pattern(), &config).unwrap();
    assert!(result.network.is_strongly_connected());
}
