//! Property-based tests of Theorem 1 over randomized well-behaved
//! patterns: whatever the pattern, if synthesis reports a feasible result
//! the materialized network must be contention-free and structurally
//! sound.

use nocsyn_check::{check_assert, check_assert_eq, check_assume, check_n, u64_in, usize_in};

use nocsyn::model::SkewModel;
use nocsyn::synth::{synthesize, AppPattern, SynthesisConfig};
use nocsyn::topo::{verify_contention_free, ConflictSet};
use nocsyn::workloads::{random_permutation_schedule, WorkloadParams};

/// Synthesized networks satisfy C ∩ R = ∅ for any random pattern.
#[test]
fn synthesized_networks_are_contention_free() {
    check_n(
        "synthesized_networks_are_contention_free",
        24,
        (usize_in(4..10), usize_in(1..8), u64_in(0..1_000)),
        |&(n_procs, n_phases, seed)| {
            let schedule = random_permutation_schedule(
                n_procs,
                n_phases,
                seed,
                &WorkloadParams::default().with_bytes(64),
            );
            check_assume!(!schedule.is_empty());
            let pattern = AppPattern::from_schedule(&schedule);
            let config = SynthesisConfig::new().with_seed(seed).with_restarts(2);
            let result = synthesize(&pattern, &config).unwrap();

            // Structure.
            check_assert!(result.network.is_strongly_connected());
            result.routes.validate(&result.network).unwrap();
            check_assert_eq!(result.routes.len(), pattern.flows().len());

            // Theorem 1, via witnesses and via the materialized conflict set.
            let report = verify_contention_free(pattern.contention(), &result.routes);
            check_assert!(report.is_contention_free(), "witnesses: {}", report);
            let conflicts = ConflictSet::from_routes(&result.routes);
            check_assert!(!nocsyn::topo::intersects(pattern.contention(), &conflicts));
            Ok(())
        },
    );
}

/// The placement maps every processor to its network home switch.
#[test]
fn placement_is_consistent() {
    check_n(
        "placement_is_consistent",
        24,
        (usize_in(4..9), u64_in(0..500)),
        |&(n_procs, seed)| {
            let schedule =
                random_permutation_schedule(n_procs, 3, seed, &WorkloadParams::default());
            check_assume!(!schedule.is_empty());
            let pattern = AppPattern::from_schedule(&schedule);
            let result = synthesize(
                &pattern,
                &SynthesisConfig::new().with_seed(seed).with_restarts(1),
            )
            .unwrap();
            for proc in 0..n_procs {
                let home = result
                    .network
                    .switch_of(nocsyn::model::ProcId(proc))
                    .unwrap();
                check_assert_eq!(home.index(), result.placement[proc]);
            }
            Ok(())
        },
    );
}

/// Zero skew reproduces the ideal lowering exactly; *small* skew
/// (below any message duration) keeps every intra-phase overlap while
/// possibly adding cross-phase ones — the tradeoff the paper accepts
/// in Section 4.
#[test]
fn small_skew_preserves_intra_phase_contention() {
    check_n(
        "small_skew_preserves_intra_phase_contention",
        24,
        (
            usize_in(4..9),
            usize_in(1..6),
            u64_in(0..500),
            u64_in(0..64),
        ),
        |&(n_procs, n_phases, seed, skew)| {
            let schedule = random_permutation_schedule(
                n_procs,
                n_phases,
                seed,
                &WorkloadParams::default().with_bytes(256),
            );
            check_assume!(!schedule.is_empty());
            let ideal_trace = schedule.to_trace();
            check_assert_eq!(&SkewModel::none().apply(&schedule), &ideal_trace);

            // Messages last 256 ticks; skew < 64 cannot pull two same-phase
            // messages apart.
            let ideal = ideal_trace.contention_set();
            let skewed = SkewModel::new(skew, seed).apply(&schedule).contention_set();
            for pair in ideal.iter() {
                check_assert!(
                    skewed.conflicts(pair.first(), pair.second()),
                    "small skew dropped contention pair {}",
                    pair
                );
            }
            Ok(())
        },
    );
}
