//! Property-based tests of Theorem 1 over randomized well-behaved
//! patterns: whatever the pattern, if synthesis reports a feasible result
//! the materialized network must be contention-free and structurally
//! sound.

use proptest::prelude::*;

use nocsyn::model::SkewModel;
use nocsyn::synth::{synthesize, AppPattern, SynthesisConfig};
use nocsyn::topo::{verify_contention_free, ConflictSet};
use nocsyn::workloads::{random_permutation_schedule, WorkloadParams};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Synthesized networks satisfy C ∩ R = ∅ for any random pattern.
    #[test]
    fn synthesized_networks_are_contention_free(
        n_procs in 4usize..10,
        n_phases in 1usize..8,
        seed in 0u64..1_000,
    ) {
        let schedule = random_permutation_schedule(
            n_procs,
            n_phases,
            seed,
            &WorkloadParams::default().with_bytes(64),
        );
        prop_assume!(!schedule.is_empty());
        let pattern = AppPattern::from_schedule(&schedule);
        let config = SynthesisConfig::new().with_seed(seed).with_restarts(2);
        let result = synthesize(&pattern, &config).unwrap();

        // Structure.
        prop_assert!(result.network.is_strongly_connected());
        result.routes.validate(&result.network).unwrap();
        prop_assert_eq!(result.routes.len(), pattern.flows().len());

        // Theorem 1, via witnesses and via the materialized conflict set.
        let report = verify_contention_free(pattern.contention(), &result.routes);
        prop_assert!(report.is_contention_free(), "witnesses: {}", report);
        let conflicts = ConflictSet::from_routes(&result.routes);
        prop_assert!(!nocsyn::topo::intersects(pattern.contention(), &conflicts));
    }

    /// The placement maps every processor to its network home switch.
    #[test]
    fn placement_is_consistent(
        n_procs in 4usize..9,
        seed in 0u64..500,
    ) {
        let schedule = random_permutation_schedule(
            n_procs,
            3,
            seed,
            &WorkloadParams::default(),
        );
        prop_assume!(!schedule.is_empty());
        let pattern = AppPattern::from_schedule(&schedule);
        let result = synthesize(
            &pattern,
            &SynthesisConfig::new().with_seed(seed).with_restarts(1),
        )
        .unwrap();
        for proc in 0..n_procs {
            let home = result
                .network
                .switch_of(nocsyn::model::ProcId(proc))
                .unwrap();
            prop_assert_eq!(home.index(), result.placement[proc]);
        }
    }

    /// Zero skew reproduces the ideal lowering exactly; *small* skew
    /// (below any message duration) keeps every intra-phase overlap while
    /// possibly adding cross-phase ones — the tradeoff the paper accepts
    /// in Section 4.
    #[test]
    fn small_skew_preserves_intra_phase_contention(
        n_procs in 4usize..9,
        n_phases in 1usize..6,
        seed in 0u64..500,
        skew in 0u64..64,
    ) {
        let schedule = random_permutation_schedule(
            n_procs,
            n_phases,
            seed,
            &WorkloadParams::default().with_bytes(256),
        );
        prop_assume!(!schedule.is_empty());
        let ideal_trace = schedule.to_trace();
        prop_assert_eq!(&SkewModel::none().apply(&schedule), &ideal_trace);

        // Messages last 256 ticks; skew < 64 cannot pull two same-phase
        // messages apart.
        let ideal = ideal_trace.contention_set();
        let skewed = SkewModel::new(skew, seed).apply(&schedule).contention_set();
        for pair in ideal.iter() {
            prop_assert!(
                skewed.conflicts(pair.first(), pair.second()),
                "small skew dropped contention pair {}",
                pair
            );
        }
    }
}
