//! Cache-correctness properties of the serve daemon: the fingerprint is
//! injective on the corpus of distinct jobs, invariant under
//! presentation (field order, comments, whitespace), and a cached report
//! is byte-identical to what a fresh synthesis — served or direct —
//! would produce.

use nocsyn_check::{check_assert, check_assert_eq, check_n, u64_in, usize_in};

use nocsyn::engine::Engine;
use nocsyn::model::{CanonicalForm, ParseOptions};
use nocsyn::serve::{
    job_fingerprint, parse_pattern, synth_json_object, CacheTier, ReplyKind, ResultCache,
    ServeOptions, Server,
};
use nocsyn::synth::{AppPattern, SynthesisConfig, SynthesisRequest};
use nocsyn::workloads::{random_permutation_schedule, WorkloadParams};

/// Wraps a config in a flat request, the shape `job_fingerprint` keys on.
fn request_for(pattern: &AppPattern, config: &SynthesisConfig) -> SynthesisRequest {
    SynthesisRequest::builder(pattern.clone())
        .config(config.clone())
        .build()
        .expect("a flat request over a valid config builds")
}

fn synth_request(text: &str, seed: u64) -> String {
    nocsyn::model::json::JsonValue::object([
        ("op", nocsyn::model::json::JsonValue::from("synth")),
        ("pattern", nocsyn::model::json::JsonValue::from(text)),
        ("seed", nocsyn::model::json::JsonValue::from(seed)),
        ("restarts", nocsyn::model::json::JsonValue::from(1u64)),
    ])
    .to_string()
}

fn pattern_text(n_procs: usize, n_phases: usize, seed: u64) -> String {
    nocsyn::model::format_schedule(&random_permutation_schedule(
        n_procs,
        n_phases,
        seed,
        &WorkloadParams::default().with_bytes(64),
    ))
}

/// Distinct (pattern, config, seed) triples get distinct fingerprints.
#[test]
fn fingerprint_is_injective_on_distinct_jobs() {
    let opts = ParseOptions::new();
    let mut seen: std::collections::HashMap<String, String> = std::collections::HashMap::new();
    // A corpus that varies each fingerprint ingredient one at a time.
    let mut jobs: Vec<(String, SynthesisConfig)> = Vec::new();
    for pat_seed in 0..4 {
        jobs.push((pattern_text(6, 2, pat_seed), SynthesisConfig::new()));
    }
    for seed in [1, 2, 3] {
        jobs.push((
            pattern_text(6, 2, 0),
            SynthesisConfig::new().with_seed(seed),
        ));
    }
    for degree in [3, 4, 6] {
        jobs.push((
            pattern_text(6, 2, 0),
            SynthesisConfig::new().with_max_degree(degree),
        ));
    }
    for restarts in [1, 2] {
        jobs.push((
            pattern_text(6, 2, 0),
            SynthesisConfig::new().with_restarts(restarts),
        ));
    }
    for (text, config) in &jobs {
        let parsed = parse_pattern(text, &opts).expect("generated patterns are valid");
        let request = request_for(&parsed.pattern, config);
        let fp = job_fingerprint(parsed.kind, &parsed.canonical, &request).to_hex();
        let description = format!("{text} + {:?}", config.canonical_form().render());
        if let Some(previous) = seen.insert(fp, description.clone()) {
            panic!("fingerprint collision between jobs:\n{previous}\n{description}");
        }
    }
    assert_eq!(seen.len(), jobs.len());
}

/// The canonical form digests identically however its fields are
/// (re)ordered — the property that makes the fingerprint independent of
/// config-field presentation order.
#[test]
fn canonical_form_is_permutation_stable() {
    check_n(
        "canonical_form_is_permutation_stable",
        48,
        (u64_in(0..u64::MAX), usize_in(2..9)),
        |&(seed, n_fields)| {
            let fields: Vec<(String, String)> = (0..n_fields)
                .map(|i| {
                    (
                        format!("k{i}"),
                        format!("v{}", seed.rotate_left(i as u32) % 1000),
                    )
                })
                .collect();
            let mut forward = CanonicalForm::new();
            let mut reversed = CanonicalForm::new();
            let mut interleaved = CanonicalForm::new();
            for f in &fields {
                forward.push_field(&f.0, &f.1);
            }
            for f in fields.iter().rev() {
                reversed.push_field(&f.0, &f.1);
            }
            for f in fields.iter().skip(1).chain(fields.iter().take(1)) {
                interleaved.push_field(&f.0, &f.1);
            }
            check_assert_eq!(forward.digest(), reversed.digest());
            check_assert_eq!(forward.digest(), interleaved.digest());
            Ok(())
        },
    );
}

/// Equivalent pattern presentations (comments, blank lines, spacing)
/// produce the same fingerprint; genuinely different patterns don't.
#[test]
fn fingerprint_is_invariant_under_pattern_presentation() {
    let opts = ParseOptions::new();
    let config = SynthesisConfig::new();
    let fp = |text: &str| {
        let parsed = parse_pattern(text, &opts).expect("valid pattern");
        let request = request_for(&parsed.pattern, &config);
        job_fingerprint(parsed.kind, &parsed.canonical, &request)
    };
    let plain = "procs 4\nphase\n  0 -> 1\n  2 -> 3\n";
    let noisy = "# comment\nprocs 4\n\nphase\n  0->1\n  2 ->   3\n";
    let other = "procs 4\nphase\n  0 -> 1\n  3 -> 2\n";
    assert_eq!(fp(plain), fp(noisy));
    assert_ne!(fp(plain), fp(other));
}

/// The disk tier is untrusted: an entry whose companion certificate is
/// corrupted (or deleted) is never served — the daemon counts a
/// `cert_errors`, re-synthesizes, and rewrites the entry.
#[test]
fn disk_entries_with_bad_certificates_are_recertified_not_served() {
    let dir = std::env::temp_dir().join("nocsyn-serve-cache-cert-test");
    let _ = std::fs::remove_dir_all(&dir);
    let text = pattern_text(6, 2, 77);
    let request = nocsyn::model::json::JsonValue::object([
        ("op", nocsyn::model::json::JsonValue::from("synth")),
        (
            "pattern",
            nocsyn::model::json::JsonValue::from(text.as_str()),
        ),
        ("seed", nocsyn::model::json::JsonValue::from(77u64)),
        ("restarts", nocsyn::model::json::JsonValue::from(1u64)),
    ])
    .to_string();
    let with_dir = || {
        Server::new(ServeOptions {
            cache_dir: Some(dir.clone()),
            ..ServeOptions::default()
        })
    };

    // Populate the disk store, and record the fingerprint + reply bytes.
    let first = with_dir().handle_line(&request);
    assert!(matches!(first.kind, ReplyKind::Report(CacheTier::Miss)));
    let parsed = parse_pattern(&text, &ParseOptions::new()).expect("valid pattern");
    let config = SynthesisConfig::new().with_seed(77).with_restarts(1);
    let fp = job_fingerprint(
        parsed.kind,
        &parsed.canonical,
        &request_for(&parsed.pattern, &config),
    )
    .to_hex();
    let cert_path = dir.join(format!("{fp}.cert.json"));
    assert!(cert_path.exists(), "a certificate rides along on disk");

    // A fresh daemon trusts the disk entry only because the certificate
    // validates.
    let disk = with_dir().handle_line(&request);
    assert!(
        matches!(disk.kind, ReplyKind::Report(CacheTier::Disk)),
        "{}",
        disk.line
    );

    // Corrupt the certificate with well-formed JSON that is *not* a
    // contention-freedom certificate: the startup scan keeps the pair
    // (both files parse), so this exercises the semantic validator —
    // the entry must be re-synthesized, never served from disk, and the
    // stats must count the bad certificate. (Structurally torn files
    // are the startup scan's job; see the truncation tests below.)
    std::fs::write(&cert_path, "{\"not\":\"a certificate\"}").expect("test dir writable");
    let server = with_dir();
    let recert = server.handle_line(&request);
    assert!(
        matches!(recert.kind, ReplyKind::Report(CacheTier::Miss)),
        "a bad certificate must force re-synthesis, got {}",
        recert.line
    );
    assert_eq!(
        recert
            .line
            .replace("\"cache\":\"miss\"", "\"cache\":\"disk\""),
        disk.line,
        "re-synthesis reproduces the same bytes"
    );
    let stats = server.handle_line(r#"{"op":"stats"}"#);
    assert!(matches!(stats.kind, ReplyKind::Stats));
    assert!(stats.line.contains("\"cert_errors\":1"), "{}", stats.line);

    // The re-synthesis rewrote a valid certificate. Deleting it leaves
    // an orphan report, which the next daemon's startup scan quarantines
    // — the job is re-synthesized from scratch, not served uncertified.
    let healed = with_dir().handle_line(&request);
    assert!(matches!(healed.kind, ReplyKind::Report(CacheTier::Disk)));
    std::fs::remove_file(&cert_path).expect("test dir writable");
    let server = with_dir();
    let missing = server.handle_line(&request);
    assert!(matches!(missing.kind, ReplyKind::Report(CacheTier::Miss)));
    assert!(
        server
            .handle_line(r#"{"op":"stats"}"#)
            .line
            .contains("\"quarantined\":1"),
        "orphan reports are quarantined at startup"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A report or certificate file truncated at *any* byte is structurally
/// torn — the strict JSON parser never accepts a proper prefix of a
/// complete object — so the startup scan must quarantine it, plus its
/// now-orphaned companion, at every single truncation point.
#[test]
fn every_byte_truncation_is_quarantined_by_the_startup_scan() {
    let dir = std::env::temp_dir().join(format!(
        "nocsyn-serve-cache-truncate-scan-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let text = pattern_text(4, 1, 11);
    let request = synth_request(&text, 11);
    let first = Server::new(ServeOptions {
        cache_dir: Some(dir.clone()),
        ..ServeOptions::default()
    })
    .handle_line(&request);
    assert!(matches!(first.kind, ReplyKind::Report(CacheTier::Miss)));

    let parsed = parse_pattern(&text, &ParseOptions::new()).expect("valid pattern");
    let config = SynthesisConfig::new().with_seed(11).with_restarts(1);
    let fp = job_fingerprint(
        parsed.kind,
        &parsed.canonical,
        &request_for(&parsed.pattern, &config),
    )
    .to_hex();
    let report_path = dir.join(format!("{fp}.json"));
    let cert_path = dir.join(format!("{fp}.cert.json"));
    let report = std::fs::read(&report_path).expect("report on disk");
    let cert = std::fs::read(&cert_path).expect("certificate on disk");

    let scan = |torn: &std::path::Path, bytes: &[u8], k: usize| {
        std::fs::write(torn, &bytes[..k]).expect("test dir writable");
        let mut cache = ResultCache::new(4).with_dir(dir.clone());
        cache.recover();
        let stats = cache.stats();
        assert!(
            stats.quarantined == 2 && stats.recovered == 0,
            "truncation at byte {k} of {torn:?}: expected the torn file and \
             its orphaned companion quarantined, got {stats:?}"
        );
        assert!(!report_path.exists(), "byte {k}: report left behind");
        assert!(!cert_path.exists(), "byte {k}: certificate left behind");
        // Restore the intact pair for the next truncation point.
        std::fs::write(&report_path, &report).expect("test dir writable");
        std::fs::write(&cert_path, &cert).expect("test dir writable");
    };
    for k in 0..report.len() {
        scan(&report_path, &report, k);
    }
    for k in 0..cert.len() {
        scan(&cert_path, &cert, k);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Torn disk files through the full daemon path: a seeded truncation of
/// either file is quarantined at startup, the job re-synthesizes to the
/// same bytes, and the healed disk pair is byte-identical to the
/// original. Failures replay with `NOCSYN_CHECK_SEED`.
#[test]
fn truncated_disk_entries_heal_byte_identically() {
    let dir = std::env::temp_dir().join(format!(
        "nocsyn-serve-cache-truncate-heal-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let text = pattern_text(5, 2, 23);
    let request = synth_request(&text, 23);
    let with_dir = || {
        Server::new(ServeOptions {
            cache_dir: Some(dir.clone()),
            ..ServeOptions::default()
        })
    };
    let first = with_dir().handle_line(&request);
    assert!(matches!(first.kind, ReplyKind::Report(CacheTier::Miss)));
    let disk_line = {
        let served = with_dir().handle_line(&request);
        assert!(matches!(served.kind, ReplyKind::Report(CacheTier::Disk)));
        served.line
    };
    let parsed = parse_pattern(&text, &ParseOptions::new()).expect("valid pattern");
    let config = SynthesisConfig::new().with_seed(23).with_restarts(1);
    let fp = job_fingerprint(
        parsed.kind,
        &parsed.canonical,
        &request_for(&parsed.pattern, &config),
    )
    .to_hex();
    let report_path = dir.join(format!("{fp}.json"));
    let cert_path = dir.join(format!("{fp}.cert.json"));
    let report = std::fs::read(&report_path).expect("report on disk");
    let cert = std::fs::read(&cert_path).expect("certificate on disk");

    check_n(
        "truncated_disk_entries_heal_byte_identically",
        8,
        (usize_in(0..2), u64_in(0..10_000)),
        |&(which, frac)| {
            let (path, bytes) = if which == 0 {
                (&report_path, &report)
            } else {
                (&cert_path, &cert)
            };
            let k = (frac as usize).saturating_mul(bytes.len() - 1) / 9_999;
            std::fs::write(path, &bytes[..k]).expect("test dir writable");
            // Startup quarantines the torn file and its orphaned
            // companion; the request re-synthesizes to the same bytes.
            let server = with_dir();
            let healed = server.handle_line(&request);
            check_assert!(matches!(healed.kind, ReplyKind::Report(CacheTier::Miss)));
            check_assert_eq!(
                healed
                    .line
                    .replace("\"cache\":\"miss\"", "\"cache\":\"disk\""),
                disk_line
            );
            check_assert!(server
                .handle_line(r#"{"op":"stats"}"#)
                .line
                .contains("\"quarantined\":2"));
            // The re-synthesis rewrote both files: a fresh daemon serves
            // the healed entry from disk, byte-identical all the way down.
            let again = with_dir().handle_line(&request);
            check_assert!(matches!(again.kind, ReplyKind::Report(CacheTier::Disk)));
            check_assert_eq!(again.line, disk_line);
            check_assert_eq!(std::fs::read(&report_path).expect("healed report"), report);
            check_assert_eq!(std::fs::read(&cert_path).expect("healed certificate"), cert);
            Ok(())
        },
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A served cache hit is byte-identical (modulo the cache marker) to the
/// miss that populated it, and its embedded report is byte-identical to
/// a direct engine run rendered through the same `synth_json_object`.
#[test]
fn cached_report_matches_fresh_synthesis_bytes() {
    check_n(
        "cached_report_matches_fresh_synthesis_bytes",
        6,
        (usize_in(4..8), u64_in(0..50)),
        |&(n_procs, seed)| {
            let text = pattern_text(n_procs, 2, seed);
            let server = Server::new(ServeOptions::default());
            let request = nocsyn::model::json::JsonValue::object([
                ("op", nocsyn::model::json::JsonValue::from("synth")),
                (
                    "pattern",
                    nocsyn::model::json::JsonValue::from(text.as_str()),
                ),
                ("seed", nocsyn::model::json::JsonValue::from(seed)),
                ("restarts", nocsyn::model::json::JsonValue::from(2u64)),
            ])
            .to_string();
            let miss = server.handle_line(&request);
            let hit = server.handle_line(&request);
            check_assert!(matches!(miss.kind, ReplyKind::Report(CacheTier::Miss)));
            check_assert!(matches!(hit.kind, ReplyKind::Report(CacheTier::Hit)));
            check_assert_eq!(
                miss.line.replace("\"cache\":\"miss\"", "\"cache\":\"hit\""),
                hit.line
            );

            // Direct run through the same engine API and renderer.
            let parsed =
                parse_pattern(&text, &ParseOptions::new()).expect("generated patterns are valid");
            let config = SynthesisConfig::new().with_seed(seed).with_restarts(2);
            let request = request_for(&parsed.pattern, &config);
            let outcome = Engine::new().synthesize(&parsed.pattern, &config, None);
            let direct = synth_json_object(&request, &outcome);
            let embedded = hit
                .line
                .split("\"report\":")
                .nth(1)
                .and_then(|s| s.strip_suffix('}'))
                .expect("reply embeds the report object last");
            check_assert_eq!(embedded, direct.as_str());
            Ok(())
        },
    );
}
