//! Run-time reconfiguration: warm-started synthesis keeps the new network
//! close to the old one, `NetworkDelta` prices the change, and fault
//! repair restores service after failures.

use nocsyn::certify::{check_certificate, CheckOptions};
use nocsyn::faults::{repair_routes, route_is_affected, DegradationReport, FaultScenario};
use nocsyn::model::format_schedule;
use nocsyn::synth::{synthesize, synthesize_incremental, AppPattern, SynthesisConfig};
use nocsyn::topo::{build_certificate, verify_contention_free, NetworkDelta};
use nocsyn::workloads::{Benchmark, WorkloadParams};

fn light(benchmark: Benchmark) -> WorkloadParams {
    WorkloadParams::paper_default(benchmark)
        .with_iterations(1)
        .with_bytes(256)
}

#[test]
fn incremental_synthesis_is_valid_and_contention_free() {
    let cg = AppPattern::from_schedule(&Benchmark::Cg.schedule(16, &light(Benchmark::Cg)).unwrap());
    let mg = AppPattern::from_schedule(&Benchmark::Mg.schedule(16, &light(Benchmark::Mg)).unwrap());
    let config = SynthesisConfig::new().with_seed(0x1E).with_restarts(2);

    let base = synthesize(&cg, &config).unwrap();
    let warm = synthesize_incremental(&mg, &base.placement, &config).unwrap();

    assert!(warm.network.is_strongly_connected());
    warm.routes.validate(&warm.network).unwrap();
    let check = verify_contention_free(mg.contention(), &warm.routes);
    assert!(check.is_contention_free(), "{check}");
}

#[test]
fn warm_start_changes_less_than_cold_start() {
    let cg = AppPattern::from_schedule(&Benchmark::Cg.schedule(16, &light(Benchmark::Cg)).unwrap());
    let mg = AppPattern::from_schedule(&Benchmark::Mg.schedule(16, &light(Benchmark::Mg)).unwrap());
    let config = SynthesisConfig::new().with_seed(0x1F).with_restarts(2);

    let base = synthesize(&cg, &config).unwrap();
    let warm = synthesize_incremental(&mg, &base.placement, &config).unwrap();
    let cold = synthesize(&mg, &config).unwrap();

    let warm_delta = NetworkDelta::between(&base.network, &warm.network);
    let cold_delta = NetworkDelta::between(&base.network, &cold.network);
    // The guarantee of the warm start is placement continuity: physical
    // NI re-wiring (moving a processor to another switch) is the
    // expensive part of a reconfiguration, and the warm start avoids it
    // wherever the new pattern permits. Link re-wiring still tracks the
    // pattern difference in both cases.
    assert!(
        warm_delta.moved_procs().len() <= cold_delta.moved_procs().len(),
        "warm moved {:?} vs cold moved {:?}",
        warm_delta.moved_procs(),
        cold_delta.moved_procs()
    );
    // Sanity: neither edit script is pathological (bounded by rebuilding
    // every link of both networks).
    let bound = base.network.n_network_links()
        + warm
            .network
            .n_network_links()
            .max(cold.network.n_network_links());
    assert!(warm_delta.cost() <= bound + 16);
}

/// Single-link-failure → repair → Theorem-1 round-trip on a synthesized
/// benchmark network: every flow is classified, repaired routes never
/// touch the failed link, and clean repairs re-verify `C ∩ R = ∅`.
fn repair_round_trip(benchmark: Benchmark, n: usize, seed: u64) {
    let schedule = benchmark.schedule(n, &light(benchmark)).unwrap();
    let pattern_text = format_schedule(&schedule);
    let pattern = AppPattern::from_schedule(&schedule);
    let config = SynthesisConfig::new().with_seed(seed).with_restarts(2);
    let result = synthesize(&pattern, &config).unwrap();
    let check_opts = CheckOptions::new();

    for scenario in FaultScenario::enumerate_single_link_faults(&result.network) {
        let outcome = repair_routes(&result.network, &result.routes, &scenario);
        assert_eq!(
            outcome.routes.len() + outcome.unroutable.len(),
            result.routes.len(),
            "{benchmark:?} {scenario}: repair lost flows"
        );
        for (flow, route) in outcome.routes.iter() {
            assert!(
                !route_is_affected(&result.network, route, &scenario),
                "{benchmark:?} {scenario}: repaired {flow} crosses the fault"
            );
            route.validate(&result.network, flow).unwrap();
        }
        // The degradation report agrees with a direct re-verification.
        let report = DegradationReport::analyze(
            &result.network,
            pattern.contention(),
            &result.routes,
            scenario.clone(),
        );
        let recheck = verify_contention_free(pattern.contention(), &outcome.routes);
        assert_eq!(
            report.still_contention_free(),
            recheck.is_contention_free() && outcome.unroutable.is_empty(),
            "{benchmark:?} {scenario}"
        );
        // Every repaired route table re-certifies through the
        // independent checker, and the certificate's verdict agrees
        // with the direct Theorem-1 re-check.
        let cert = build_certificate(
            pattern.n_procs(),
            pattern.cliques(),
            pattern.contention(),
            report.repaired_routes(),
            None,
        );
        let summary = check_certificate(&pattern_text, &cert.to_json(), None, &check_opts)
            .unwrap_or_else(|rej| {
                panic!("{benchmark:?} {scenario}: repaired certificate rejected ({rej})")
            });
        assert_eq!(
            summary.contention_free,
            recheck.is_contention_free(),
            "{benchmark:?} {scenario}: certificate verdict disagrees with re-verification"
        );
    }
}

/// A deliberately corrupted repair — two contending flows forced onto a
/// shared channel behind a freedom claim — is caught by the checker.
#[test]
fn corrupted_repair_is_caught_by_the_checker() {
    let benchmark = Benchmark::Mg;
    let schedule = benchmark.schedule(8, &light(benchmark)).unwrap();
    let pattern_text = format_schedule(&schedule);
    let pattern = AppPattern::from_schedule(&schedule);
    let config = SynthesisConfig::new().with_seed(0x23).with_restarts(2);
    let result = synthesize(&pattern, &config).unwrap();

    let mut cert = build_certificate(
        pattern.n_procs(),
        pattern.cliques(),
        pattern.contention(),
        &result.routes,
        None,
    );
    assert!(cert.contention_free, "baseline synthesis certifies clean");

    // "Repair" a contending pair onto one shared channel but keep the
    // freedom claim — the shape of a buggy repair path.
    let pair = *cert.obligations.first().expect("MG8 has contention");
    cert.routes.insert(pair.first(), vec!["SHARED".to_string()]);
    cert.routes
        .insert(pair.second(), vec!["SHARED".to_string()]);
    cert.crossings.clear();
    let route_entries: Vec<(nocsyn::model::Flow, Vec<String>)> =
        cert.routes.iter().map(|(f, c)| (*f, c.clone())).collect();
    for (flow, chans) in route_entries {
        for ch in chans {
            cert.crossings.entry(ch).or_default().push(flow);
        }
    }
    let err = check_certificate(&pattern_text, &cert.to_json(), None, &CheckOptions::new())
        .expect_err("a false freedom claim must be rejected");
    assert_eq!(err.fingerprint(), "obligation-violated");
    let violations = err.violations();
    assert!(violations.iter().any(|v| v.pair == pair), "{violations:?}");
}

#[test]
fn cg16_single_link_failures_repair_and_reverify() {
    repair_round_trip(Benchmark::Cg, 16, 0x21);
}

#[test]
fn mg8_single_link_failures_repair_and_reverify() {
    repair_round_trip(Benchmark::Mg, 8, 0x22);
}

#[test]
fn identity_reconfiguration_when_pattern_unchanged() {
    let cg = AppPattern::from_schedule(&Benchmark::Cg.schedule(8, &light(Benchmark::Cg)).unwrap());
    let config = SynthesisConfig::new().with_seed(0x20).with_restarts(2);
    let base = synthesize(&cg, &config).unwrap();
    let again = synthesize_incremental(&cg, &base.placement, &config).unwrap();
    // Same pattern from the same placement: no processor moves at all,
    // and the constraint is already satisfied so no splits happen.
    let delta = NetworkDelta::between(&base.network, &again.network);
    assert!(delta.moved_procs().is_empty(), "{delta}");
}
